// Tests for the common kernel: RNG, statistics, tables, CLI and the
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace meshrt {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, StreamsAreIndependentAndReproducible) {
  Rng a = Rng::forStream(7, 0);
  Rng a2 = Rng::forStream(7, 0);
  Rng b = Rng::forStream(7, 1);
  EXPECT_EQ(a(), a2());
  EXPECT_NE(a(), b());
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(5);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) sawLo = true;
    if (v == 3) sawHi = true;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, Uniform01InHalfOpenRange) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(AccumulatorTest, TracksMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_EQ(acc.min(), 1.0);
  EXPECT_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(AccumulatorTest, MergeMatchesSequential) {
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform01() * 10;
    whole.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(AccumulatorTest, EmptyIsSafe) {
  const Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(RatioCounterTest, PercentAndMerge) {
  RatioCounter a;
  a.add(true);
  a.add(false);
  RatioCounter b;
  b.add(true);
  b.add(true);
  a.merge(b);
  EXPECT_EQ(a.hits(), 3u);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_DOUBLE_EQ(a.percent(), 75.0);
  EXPECT_DOUBLE_EQ(RatioCounter{}.percent(), 100.0);
}

TEST(QuantileSketchTest, NearestRankQuantiles) {
  QuantileSketch sketch;
  for (int i = 1; i <= 100; ++i) sketch.add(i);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 100.0);
  EXPECT_NEAR(sketch.quantile(0.5), 50.0, 1.0);
}

TEST(TableTest, PrintsAlignedColumns) {
  Table table({"a", "long-header"});
  table.row().cell(std::int64_t{1}).cell("x");
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  Table table({"x", "y"});
  table.row().cell(std::int64_t{1}).cell(2.5, 1);
  std::ostringstream os;
  table.writeCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2.5\n");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(CliTest, ParsesFlagsAndDefaults) {
  CliFlags flags;
  flags.define("alpha", "1", "first");
  flags.define("beta", "x", "second");
  const char* argv[] = {"prog", "--alpha", "42", "--beta=hello"};
  ASSERT_TRUE(flags.parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(flags.integer("alpha"), 42);
  EXPECT_EQ(flags.str("beta"), "hello");
}

TEST(CliTest, RejectsUnknownFlag) {
  CliFlags flags;
  flags.define("alpha", "1", "first");
  const char* argv[] = {"prog", "--nope", "3"};
  EXPECT_FALSE(flags.parse(3, const_cast<char**>(argv)));
}

TEST(CliTest, SplitCommaListTrimsAndDropsEmpties) {
  const auto items = splitCommaList(" rb2 , rb3,,ecube ,");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "rb2");
  EXPECT_EQ(items[1], "rb3");
  EXPECT_EQ(items[2], "ecube");
  EXPECT_TRUE(splitCommaList("").empty());
}

TEST(CliTest, BareBooleanFlag) {
  CliFlags flags;
  flags.define("verbose", "false", "chatty");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.boolean("verbose"));
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallelFor(pool, hits.size(),
              [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelReductionDeterministic) {
  // Per-index derivation makes results independent of scheduling.
  ThreadPool pool(8);
  std::vector<std::uint64_t> out(64);
  parallelFor(pool, out.size(), [&](std::size_t i) {
    Rng rng = Rng::forStream(99, i);
    out[i] = rng();
  });
  std::vector<std::uint64_t> serial(64);
  serialFor(serial.size(), [&](std::size_t i) {
    Rng rng = Rng::forStream(99, i);
    serial[i] = rng();
  });
  EXPECT_EQ(out, serial);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallelFor(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, WaitRethrowsFirstJobException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is consumed: the pool keeps working afterwards.
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallelFor(pool, 64,
                  [](std::size_t i) {
                    if (i == 33) throw std::invalid_argument("bad index");
                  }),
      std::invalid_argument);
}

TEST(TableTest, JsonKeepsNumbersUnquoted) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{3});
  t.row().cell("be\"ta").cell(1.5, 2);
  std::ostringstream os;
  t.writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"value\": 1.50"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("be\\\"ta"), std::string::npos);
}

}  // namespace
}  // namespace meshrt
