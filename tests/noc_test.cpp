// Tests for the wormhole network simulator: delivery, ordering, latency
// composition, backpressure and fault avoidance.
#include <gtest/gtest.h>

#include "fault/analysis.h"
#include "noc/network.h"
#include "noc/traffic.h"
#include "route/ecube.h"
#include "route/rb2.h"
#include "test_util.h"

namespace meshrt {
namespace {

NocConfig smallConfig() {
  NocConfig cfg;
  cfg.vcsPerPort = 2;
  cfg.vcDepth = 4;
  cfg.packetLength = 4;
  return cfg;
}

TEST(NocTest, SinglePacketZeroLoadLatency) {
  const Mesh2D mesh = Mesh2D::square(8);
  FaultSet faults(mesh);
  EcubeRouter router(faults);
  NocNetwork net(faults, router, smallConfig());
  ASSERT_TRUE(net.inject({1, 1}, {5, 1}));
  ASSERT_TRUE(net.drain());
  const auto& rec = net.packets().front();
  EXPECT_TRUE(rec.delivered);
  // Zero-load: one cycle per hop for the head plus packet serialization.
  const auto latency =
      static_cast<Distance>(rec.ejectedCycle - rec.injectedCycle);
  EXPECT_GE(latency, rec.hops + 4);
  EXPECT_LE(latency, rec.hops + 4 + 4);  // small pipeline slack
}

TEST(NocTest, AllPacketsDeliveredUnderLoad) {
  const Mesh2D mesh = Mesh2D::square(8);
  FaultSet faults(mesh);
  EcubeRouter router(faults);
  NocNetwork net(faults, router, smallConfig());
  Rng rng(5);
  TrafficGenerator gen(mesh, TrafficPattern::UniformRandom, 0.05, rng);
  std::size_t injected = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (auto [s, d] : gen.tick()) {
      if (net.inject(s, d)) ++injected;
    }
    net.step();
  }
  ASSERT_TRUE(net.drain());
  std::size_t delivered = 0;
  for (const auto& rec : net.packets()) {
    if (rec.delivered) ++delivered;
  }
  EXPECT_GE(delivered, injected);
  EXPECT_GT(injected, 50u);
}

TEST(NocTest, PacketsAvoidFaultyNodes) {
  const Mesh2D mesh = Mesh2D::square(10);
  FaultSet faults = testutil::faultsAt(mesh, {{5, 5}, {5, 6}, {5, 4}});
  const FaultAnalysis fa(faults);
  Rb2Router router(fa);
  NocNetwork net(faults, router, smallConfig());
  ASSERT_TRUE(net.inject({2, 5}, {8, 5}));
  ASSERT_TRUE(net.drain());
  EXPECT_TRUE(net.packets().front().delivered);
  // The detour around the wall costs extra hops.
  EXPECT_GT(net.packets().front().hops, manhattan({2, 5}, {8, 5}));
}

TEST(NocTest, InjectionToFaultyDestinationFails) {
  const Mesh2D mesh = Mesh2D::square(6);
  FaultSet faults = testutil::faultsAt(mesh, {{3, 3}});
  EcubeRouter router(faults);
  NocNetwork net(faults, router, smallConfig());
  EXPECT_FALSE(net.inject({0, 0}, {3, 3}));
  EXPECT_FALSE(net.packets().front().delivered);
}

TEST(NocTest, SelfTrafficDeliversImmediately) {
  const Mesh2D mesh = Mesh2D::square(4);
  FaultSet faults(mesh);
  EcubeRouter router(faults);
  NocNetwork net(faults, router, smallConfig());
  EXPECT_TRUE(net.inject({2, 2}, {2, 2}));
  EXPECT_TRUE(net.packets().front().delivered);
  EXPECT_EQ(net.inFlight(), 0u);
}

TEST(NocTest, ContentionIncreasesLatency) {
  const Mesh2D mesh = Mesh2D::square(8);
  FaultSet faults(mesh);
  EcubeRouter router(faults);

  // Light load.
  NocNetwork light(faults, router, smallConfig());
  Rng rngA(7);
  TrafficGenerator genLight(mesh, TrafficPattern::UniformRandom, 0.01, rngA);
  for (int cycle = 0; cycle < 400; ++cycle) {
    for (auto [s, d] : genLight.tick()) light.inject(s, d);
    light.step();
  }
  ASSERT_TRUE(light.drain());

  // Heavy load (near saturation for XY on an 8x8).
  NocNetwork heavy(faults, router, smallConfig());
  Rng rngB(7);
  TrafficGenerator genHeavy(mesh, TrafficPattern::UniformRandom, 0.12, rngB);
  for (int cycle = 0; cycle < 400; ++cycle) {
    for (auto [s, d] : genHeavy.tick()) heavy.inject(s, d);
    heavy.step();
  }
  heavy.drain();

  EXPECT_GT(heavy.averageLatency(), light.averageLatency());
}

TEST(NocTest, XFirstRb2IsDeadlockFreeFaultFree) {
  // Dimension-ordered legs on a fault-free mesh == XY routing: no
  // recoveries, no stalls, even near saturation.
  const Mesh2D mesh = Mesh2D::square(8);
  FaultSet faults(mesh);
  const FaultAnalysis fa(faults);
  Rb2Router router(fa, PathOrder::XFirst);
  NocNetwork net(faults, router, smallConfig());
  Rng rng(13);
  TrafficGenerator gen(mesh, TrafficPattern::UniformRandom, 0.10, rng);
  for (int cycle = 0; cycle < 300; ++cycle) {
    for (auto [s, d] : gen.tick()) net.inject(s, d);
    net.step();
  }
  ASSERT_TRUE(net.drain());
  EXPECT_EQ(net.recoveredPackets(), 0u);
}

TEST(NocTest, RecoveryKeepsNetworkLiveUnderAdaptivePaths) {
  // Balanced (minimal fully adaptive) paths can deadlock a wormhole
  // network; the recovery mechanism must keep it live and account for the
  // aborted packets instead of stalling.
  const Mesh2D mesh = Mesh2D::square(10);
  Rng frng(3);
  FaultSet faults = injectUniform(mesh, 8, frng);
  const FaultAnalysis fa(faults);
  Rb2Router router(fa, PathOrder::Balanced);
  NocConfig cfg = smallConfig();
  cfg.recoveryCycles = 200;
  NocNetwork net(faults, router, cfg);
  Rng rng(29);
  TrafficGenerator gen(mesh, TrafficPattern::UniformRandom, 0.08, rng);
  std::size_t injected = 0;
  for (int cycle = 0; cycle < 600; ++cycle) {
    for (auto [s, d] : gen.tick()) {
      if (net.inject(s, d)) ++injected;
    }
    net.step();
  }
  ASSERT_TRUE(net.drain());  // recovery prevents a permanent stall
  std::size_t delivered = 0;
  for (const auto& rec : net.packets()) {
    if (rec.delivered) ++delivered;
  }
  EXPECT_EQ(delivered + net.recoveredPackets(), injected);
}

TEST(NocTest, MidFlightFailNodeKillsBufferedFlitsAndReroutesNewTraffic) {
  // A node dies while a packet stream crosses it: its buffered flits are
  // destroyed, blocked packets behind it are taken by deadlock recovery,
  // and traffic injected after the failure detours around the dead node
  // because the routing layer is patched incrementally — the dynamic
  // scenario of DESIGN.md section 6 at flit level.
  const Mesh2D mesh = Mesh2D::square(10);
  FaultSet faults(mesh);
  FaultAnalysis fa(faults);
  Rb2Router router(fa, PathOrder::XFirst);
  NocConfig cfg = smallConfig();
  cfg.recoveryCycles = 100;
  // Attaching the analysis makes failNode() patch the routing labels in
  // the same call — the fault model and the router can never diverge.
  NocNetwork net(faults, router, cfg, &fa);

  // Saturate row 5 with a back-to-back stream, then run until the first
  // packet ejects: the pipe behind it is full when the middle node dies.
  std::size_t accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (net.inject({0, 5}, {9, 5})) ++accepted;
    net.step();
  }
  ASSERT_EQ(accepted, 10u);
  while (!net.packets().front().delivered && net.cycle() < 1000) net.step();
  ASSERT_TRUE(net.packets().front().delivered);

  ASSERT_TRUE(net.failNode({5, 5}));
  EXPECT_FALSE(net.failNode({5, 5}));  // already dead
  EXPECT_GT(net.killedPackets(), 0u);  // the stream had flits at (5,5)

  // New traffic detours around the dead node and still delivers.
  const std::size_t firstPost = net.packets().size();
  std::size_t postAccepted = 0;
  for (int i = 0; i < 4; ++i) {
    if (net.inject({0, 5}, {9, 5})) ++postAccepted;
    net.step();
  }
  EXPECT_EQ(postAccepted, 4u);
  ASSERT_TRUE(net.drain());  // recovery keeps the network live

  std::size_t delivered = 0;
  for (const auto& rec : net.packets()) {
    if (rec.delivered) ++delivered;
  }
  EXPECT_EQ(delivered + net.recoveredPackets() + net.killedPackets(),
            accepted + postAccepted);
  for (std::size_t i = firstPost; i < net.packets().size(); ++i) {
    const auto& rec = net.packets()[i];
    EXPECT_TRUE(rec.delivered);
    EXPECT_GT(rec.hops, manhattan({0, 5}, {9, 5}));  // forced detour
  }
}

TEST(NocTest, FailNodeWithEmptyBuffersKillsNothing) {
  const Mesh2D mesh = Mesh2D::square(6);
  FaultSet faults(mesh);
  EcubeRouter router(faults);
  NocNetwork net(faults, router, smallConfig());
  EXPECT_TRUE(net.failNode({3, 3}));
  EXPECT_EQ(net.killedPackets(), 0u);
  EXPECT_TRUE(faults.isFaulty({3, 3}));
  // Injection toward the dead node now fails up front.
  EXPECT_FALSE(net.inject({0, 0}, {3, 3}));
}

TEST(NocTest, TransposeTrafficMapsCoordinates) {
  const Mesh2D mesh = Mesh2D::square(8);
  Rng rng(3);
  TrafficGenerator gen(mesh, TrafficPattern::Transpose, 1.0, rng);
  for (auto [s, d] : gen.tick()) {
    EXPECT_EQ(d, (Point{s.y, s.x}));
  }
}

TEST(TrafficPatternTest, NamesRoundTripThroughParsing) {
  for (TrafficPattern p : kAllTrafficPatterns) {
    const auto parsed = parseTrafficPattern(trafficPatternName(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
    EXPECT_NE(trafficPatternName(p), "?");
  }
  EXPECT_FALSE(parseTrafficPattern("bogus").has_value());
  EXPECT_TRUE(patternRequiresPow2(TrafficPattern::BitReversal));
  EXPECT_FALSE(patternRequiresPow2(TrafficPattern::Tornado));
}

TEST(TrafficPatternTest, BitComplementIsAnInvolutionToTheMirror) {
  const Mesh2D mesh = Mesh2D::square(8);
  Rng rng(1);
  for (Coord y = 0; y < 8; ++y) {
    for (Coord x = 0; x < 8; ++x) {
      const Point s{x, y};
      const Point d = patternDestination(mesh, TrafficPattern::BitComplement,
                                         s, rng, {4, 4});
      EXPECT_EQ(d, (Point{7 - x, 7 - y}));
      EXPECT_EQ(patternDestination(mesh, TrafficPattern::BitComplement, d,
                                   rng, {4, 4}),
                s);
    }
  }
}

TEST(TrafficPatternTest, BitReversalPermutesPow2Coordinates) {
  const Mesh2D mesh = Mesh2D::square(8);  // 3 bits per coordinate
  Rng rng(1);
  const Point d = patternDestination(mesh, TrafficPattern::BitReversal,
                                     {1, 4}, rng, {4, 4});
  // 001 -> 100, 100 -> 001.
  EXPECT_EQ(d, (Point{4, 1}));
  // An involution: reversing twice restores the source.
  for (Coord y = 0; y < 8; ++y) {
    for (Coord x = 0; x < 8; ++x) {
      const Point once = patternDestination(
          mesh, TrafficPattern::BitReversal, {x, y}, rng, {4, 4});
      EXPECT_EQ(patternDestination(mesh, TrafficPattern::BitReversal, once,
                                   rng, {4, 4}),
                (Point{x, y}));
    }
  }
}

TEST(TrafficPatternTest, TornadoShiftsHalfwayAroundEachDimension) {
  const Mesh2D mesh = Mesh2D::square(8);
  Rng rng(1);
  const Point d = patternDestination(mesh, TrafficPattern::Tornado, {0, 0},
                                     rng, {4, 4});
  EXPECT_EQ(d, (Point{3, 3}));  // (0 + ceil(8/2) - 1) mod 8
  // Every destination stays in the mesh even from the far border.
  for (Coord y = 0; y < 8; ++y) {
    for (Coord x = 0; x < 8; ++x) {
      EXPECT_TRUE(mesh.contains(patternDestination(
          mesh, TrafficPattern::Tornado, {x, y}, rng, {4, 4})));
    }
  }
}

TEST(TrafficPatternTest, GeneratorHonorsPermutationPatterns) {
  const Mesh2D mesh = Mesh2D::square(8);
  Rng rng(9);
  TrafficGenerator gen(mesh, TrafficPattern::Tornado, 1.0, rng);
  std::size_t pairs = 0;
  for (auto [s, d] : gen.tick()) {
    EXPECT_EQ(d, (Point{static_cast<Coord>((s.x + 3) % 8),
                        static_cast<Coord>((s.y + 3) % 8)}));
    ++pairs;
  }
  EXPECT_GT(pairs, 0u);
}

}  // namespace
}  // namespace meshrt
