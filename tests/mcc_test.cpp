// Tests for MCC extraction: component splitting, staircase invariant,
// corner placement and border handling.
#include <gtest/gtest.h>

#include "fault/analysis.h"
#include "fault/mcc.h"
#include "test_util.h"

namespace meshrt {
namespace {

using testutil::faultsAt;

MccExtraction extract(const Mesh2D& mesh, const FaultSet& faults) {
  return extractMccs(mesh, computeLabels(mesh, faults));
}

TEST(MccTest, NoFaultsNoMccs) {
  const Mesh2D mesh = Mesh2D::square(6);
  EXPECT_TRUE(extract(mesh, FaultSet(mesh)).mccs.empty());
}

TEST(MccTest, SingleFaultSingleCellMcc) {
  const Mesh2D mesh = Mesh2D::square(8);
  const auto ext = extract(mesh, faultsAt(mesh, {{3, 3}}));
  ASSERT_EQ(ext.mccs.size(), 1u);
  const Mcc& mcc = ext.mccs.front();
  EXPECT_EQ(mcc.cellCount, 1u);
  EXPECT_EQ(mcc.faultyCells, 1u);
  EXPECT_EQ(mcc.cornerC, (Point{2, 2}));
  EXPECT_EQ(mcc.cornerCPrime, (Point{4, 4}));
  EXPECT_EQ(mcc.cornerNW, (Point{2, 4}));
  EXPECT_EQ(mcc.cornerSE, (Point{4, 2}));
}

TEST(MccTest, SeparateFaultsSeparateMccs) {
  const Mesh2D mesh = Mesh2D::square(10);
  const auto ext = extract(mesh, faultsAt(mesh, {{2, 2}, {7, 7}}));
  EXPECT_EQ(ext.mccs.size(), 2u);
}

TEST(MccTest, DiagonalFaultsStayDistinct) {
  const Mesh2D mesh = Mesh2D::square(10);
  const auto ext = extract(mesh, faultsAt(mesh, {{5, 5}, {6, 6}}));
  EXPECT_EQ(ext.mccs.size(), 2u);
  // The SW MCC's opposite corner is the NE fault's cell: unsafe, so c' is
  // absent for it; likewise the NE MCC's initialization corner.
  for (const Mcc& mcc : ext.mccs) {
    if (mcc.shape.contains({5, 5})) {
      EXPECT_FALSE(mcc.cornerCPrime.has_value());
      EXPECT_TRUE(mcc.cornerC.has_value());
    } else {
      EXPECT_FALSE(mcc.cornerC.has_value());
      EXPECT_TRUE(mcc.cornerCPrime.has_value());
    }
  }
}

TEST(MccTest, AntiDiagonalPairMergesIntoSquare) {
  const Mesh2D mesh = Mesh2D::square(10);
  const auto ext = extract(mesh, faultsAt(mesh, {{5, 6}, {6, 5}}));
  ASSERT_EQ(ext.mccs.size(), 1u);
  const Mcc& mcc = ext.mccs.front();
  EXPECT_EQ(mcc.cellCount, 4u);
  EXPECT_EQ(mcc.faultyCells, 2u);
  EXPECT_EQ(mcc.shape.span(5), (ColumnSpan{5, 6}));
  EXPECT_EQ(mcc.shape.span(6), (ColumnSpan{5, 6}));
}

TEST(MccTest, BorderMccLosesCorners) {
  // An MCC hugging the west border has no initialization corner.
  const Mesh2D mesh = Mesh2D::square(8);
  const auto ext = extract(mesh, faultsAt(mesh, {{0, 4}}));
  ASSERT_EQ(ext.mccs.size(), 1u);
  EXPECT_FALSE(ext.mccs.front().cornerC.has_value());
  EXPECT_FALSE(ext.mccs.front().cornerNW.has_value());
  EXPECT_TRUE(ext.mccs.front().cornerCPrime.has_value());
  EXPECT_TRUE(ext.mccs.front().cornerSE.has_value());
}

TEST(MccTest, IndexMapsCellsToOwners) {
  const Mesh2D mesh = Mesh2D::square(10);
  const auto ext = extract(mesh, faultsAt(mesh, {{2, 2}, {7, 7}}));
  for (const Mcc& mcc : ext.mccs) {
    for (Point cell : mcc.shape.cells()) {
      EXPECT_EQ(ext.mccIndex[cell], mcc.id);
    }
  }
  EXPECT_EQ((ext.mccIndex[{5, 5}]), -1);
}

TEST(MccTest, TransposedShapeMirrorsCells) {
  const Mesh2D mesh = Mesh2D::square(10);
  const auto ext = extract(mesh, faultsAt(mesh, {{5, 6}, {6, 5}}));
  ASSERT_EQ(ext.mccs.size(), 1u);
  const Mcc& mcc = ext.mccs.front();
  for (Point p : mcc.shape.cells()) {
    EXPECT_TRUE(mcc.shapeTransposed.contains({p.y, p.x}));
  }
  EXPECT_EQ(mcc.shape.cellCount(), mcc.shapeTransposed.cellCount());
}

// Property: every MCC of a random fault pattern satisfies the staircase
// invariant (extractMccs throws otherwise) and partitions the unsafe set.
class MccProperty : public ::testing::TestWithParam<int> {};

TEST_P(MccProperty, ComponentsPartitionUnsafeNodes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 13);
  const Mesh2D mesh = Mesh2D::square(32);
  const std::size_t count = 20 + 30 * static_cast<std::size_t>(GetParam());
  const FaultSet faults = injectUniform(mesh, count, rng);
  const auto labels = computeLabels(mesh, faults);
  const auto ext = extractMccs(mesh, labels);

  std::size_t cells = 0;
  for (const Mcc& mcc : ext.mccs) {
    cells += mcc.cellCount;
    EXPECT_EQ(mcc.cellCount, mcc.shape.cellCount());
    // Corners, when present, are safe and diagonal to the extreme cells.
    if (mcc.cornerC) {
      EXPECT_TRUE(labels.isSafe(*mcc.cornerC));
      EXPECT_EQ(*mcc.cornerC,
                (Point{mcc.shape.xmin() - 1, mcc.shape.ymin() - 1}));
    }
    if (mcc.cornerCPrime) {
      EXPECT_TRUE(labels.isSafe(*mcc.cornerCPrime));
      EXPECT_EQ(*mcc.cornerCPrime,
                (Point{mcc.shape.xmax() + 1, mcc.shape.ymax() + 1}));
    }
  }
  EXPECT_EQ(cells, countUnsafe(mesh, labels));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MccProperty, ::testing::Range(0, 15));

TEST(FaultAnalysisTest, QuadrantsShareFaultSet) {
  const Mesh2D mesh = Mesh2D::square(16);
  Rng rng(99);
  const FaultSet faults = injectUniform(mesh, 30, rng);
  const FaultAnalysis fa(faults);
  for (int q = 0; q < 4; ++q) {
    const auto& qa = fa.quadrant(static_cast<Quadrant>(q));
    // Faulty cells are frame-invariant.
    std::size_t faulty = 0;
    for (Coord y = 0; y < 16; ++y) {
      for (Coord x = 0; x < 16; ++x) {
        if (qa.labels().isFaulty(qa.frame().toLocal({x, y}))) ++faulty;
      }
    }
    EXPECT_EQ(faulty, faults.count());
  }
}

TEST(FaultAnalysisTest, UnsafeSetsDifferPerQuadrant) {
  // The labeling is orientation-dependent: a SW pocket for NE routing is
  // no pocket at all for SW routing.
  const Mesh2D mesh = Mesh2D::square(10);
  const FaultSet faults = testutil::faultsAt(mesh, {{5, 6}, {6, 5}});
  const FaultAnalysis fa(faults);
  const auto& ne = fa.quadrant(Quadrant::NE);
  EXPECT_EQ(ne.unsafeCount(), 4u);
  // In the NW frame the pair is main-diagonal: nothing merges.
  const auto& nw = fa.quadrant(Quadrant::NW);
  EXPECT_EQ(nw.unsafeCount(), 2u);
}

}  // namespace
}  // namespace meshrt
