// Tests for the copy-on-write paged storage layer (mesh/paged_grid.h)
// and its integration across the fault/knowledge/service stack.
//
// The key contracts:
//  - PagedGrid copies share pages; a write detaches exactly the touched
//    tile and never leaks into the sibling (no aliased writes);
//  - under randomized add/remove churn, the incrementally patched paged
//    state stays bit-for-bit equal to a from-scratch
//    computeLabels + extractMccs + knowledge rebuild;
//  - a published service epoch shares > 0 pages with its predecessor
//    (the deep-clone baseline shares none) while old epochs keep
//    answering from their own frozen state;
//  - COW and deep-clone services serve bit-identical results over the
//    same event sequence;
//  - concurrent first touch of lazy quadrant materialization is safe
//    (run under TSan via the CowStorage*/PagedGrid* CI filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fault/analysis.h"
#include "fault/injectors.h"
#include "fault/labeling.h"
#include "fault/mcc.h"
#include "info/knowledge.h"
#include "mesh/paged_grid.h"
#include "route/validate.h"
#include "service/route_service.h"

namespace meshrt {
namespace {

// ------------------------------------------------------------- PagedGrid

TEST(PagedGridTest, ReadsDefaultUntilWrittenAndAllocatesLazily) {
  const Mesh2D mesh(13, 9);  // deliberately not a multiple of the tile side
  PagedGrid<int> grid(mesh, 7);
  EXPECT_EQ(grid.allocatedPageCount(), 0u);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      EXPECT_EQ((std::as_const(grid)[{x, y}]), 7);
    }
  }
  grid[{12, 8}] = 42;
  EXPECT_EQ(grid.allocatedPageCount(), 1u);
  EXPECT_EQ((std::as_const(grid)[Point{12, 8}]), 42);
  EXPECT_EQ((std::as_const(grid)[Point{0, 0}]), 7);
}

TEST(PagedGridTest, CopySharesPagesAndWriteDetachesOnlyTheTouchedTile) {
  const Mesh2D mesh = Mesh2D::square(64);  // 4x4 tiles
  PagedGrid<int> a(mesh, 0);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) a[{x, y}] = y * 64 + x;
  }
  ASSERT_EQ(a.allocatedPageCount(), 16u);

  PagedGrid<int> b = a;
  EXPECT_EQ(PagedGrid<int>::sharedPageCount(a, b), 16u);

  b[{5, 5}] = -1;  // one tile detaches; the other 15 stay shared
  EXPECT_EQ(PagedGrid<int>::sharedPageCount(a, b), 15u);
  EXPECT_EQ((std::as_const(a)[Point{5, 5}]), 5 * 64 + 5);  // no aliased write
  EXPECT_EQ((std::as_const(b)[Point{5, 5}]), -1);
  EXPECT_EQ((std::as_const(b)[Point{6, 5}]), 5 * 64 + 6);  // rest of tile kept

  b.detachAll();
  EXPECT_EQ(PagedGrid<int>::sharedPageCount(a, b), 0u);
}

TEST(PagedGridTest, FillDropsPagesAndForEachAllocatedSkipsAbsentTiles) {
  const Mesh2D mesh(40, 20);
  PagedGrid<int> grid(mesh, -1);
  grid[{17, 3}] = 1;
  grid[{38, 19}] = 2;
  std::vector<std::pair<Point, int>> seen;
  std::as_const(grid).forEachAllocated(
      [&](Point p, const int& v) { seen.push_back({p, v}); });
  // Two allocated tiles, every visited cell in-mesh, both writes present:
  // tile (1,0) is interior (16x16 cells); tile (2,1) clips to 8x4.
  EXPECT_EQ(seen.size(), 16u * 16u + 8u * 4u);
  std::size_t nonDefault = 0;
  for (const auto& [p, v] : seen) {
    EXPECT_TRUE(mesh.contains(p));
    nonDefault += (v != -1);
  }
  EXPECT_EQ(nonDefault, 2u);

  grid.fill(9);
  EXPECT_EQ(grid.allocatedPageCount(), 0u);
  EXPECT_EQ((std::as_const(grid)[Point{17, 3}]), 9);
}

// ------------------------------------------ differential churn equality

/// Canonical form of an MCC set: the sorted cell lists of live
/// components (retired id == -1 slots skipped), order-independent.
/// Works over a std::vector<Mcc> and a MccSlots range alike.
template <typename Range>
std::set<std::vector<Point>> canonicalMccs(const Range& range) {
  std::set<std::vector<Point>> out;
  for (const Mcc& mcc : range) {
    if (mcc.id < 0) continue;
    std::vector<Point> cells = mcc.shape.cells();
    std::sort(cells.begin(), cells.end());
    out.insert(std::move(cells));
  }
  return out;
}

void expectQuadrantMatchesScratch(const QuadrantAnalysis& qa,
                                  const FaultSet& worldFaults) {
  const Mesh2D& mesh = qa.localMesh();
  const FaultSet local = transformFaults(worldFaults, qa.frame());
  const LabelGrid scratch = computeLabels(mesh, local);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      ASSERT_EQ(qa.labels().raw({x, y}), scratch.raw({x, y}))
          << "label byte diverged at " << Point{x, y}.str();
    }
  }
  MccExtraction ext = extractMccs(mesh, scratch);
  EXPECT_EQ(canonicalMccs(qa.liveMccs()), canonicalMccs(ext.mccs));
  EXPECT_EQ(qa.mccCount(), ext.mccs.size());
}

void expectKnowledgeMatchesScratch(const QuadrantInfo& info,
                                   const QuadrantAnalysis& qa) {
  const QuadrantInfo fresh(qa, info.model());
  const Mesh2D& mesh = qa.localMesh();
  EXPECT_EQ(info.involvedCount(), fresh.involvedCount());
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      const Point p{x, y};
      ASSERT_EQ(info.knownUnion(p), fresh.knownUnion(p))
          << "known ids diverged at " << p.str();
      ASSERT_EQ(info.wasInvolved(p), fresh.wasInvolved(p)) << p.str();
    }
  }
}

TEST(CowStorageTest, RandomChurnStaysBitIdenticalToFromScratchRebuild) {
  const Mesh2D mesh = Mesh2D::square(20);
  Rng rng(2024);
  DynamicFaultModel model(injectUniform(mesh, 30, rng));
  model.analysis().materializeAll();
  KnowledgeBundle knowledge(model.analysis(), {InfoModel::B2});

  for (int step = 0; step < 50; ++step) {
    const Point p{static_cast<Coord>(rng.below(20)),
                  static_cast<Coord>(rng.below(20))};
    if (rng.chance(0.35)) {
      model.removeFault(p);
    } else {
      model.addFault(p);
    }
    knowledge.sync();
    if (step % 5 != 4) continue;  // full differential every 5 events
    for (int q = 0; q < 4; ++q) {
      const QuadrantAnalysis& qa =
          model.analysis().quadrant(static_cast<Quadrant>(q));
      expectQuadrantMatchesScratch(qa, model.faults());
      const QuadrantInfo* info =
          knowledge.find(static_cast<Quadrant>(q), InfoModel::B2);
      ASSERT_NE(info, nullptr);
      expectKnowledgeMatchesScratch(*info, qa);
    }
  }
}

TEST(CowStorageTest, CloneForSharesLabelPagesAndNeverAliasesWrites) {
  const Mesh2D mesh = Mesh2D::square(32);
  Rng rng(7);
  DynamicFaultModel model(injectUniform(mesh, 60, rng));
  model.analysis().materializeAll();

  FaultSet frozen(model.faults());
  const auto clone = model.analysis().cloneFor(frozen);
  const auto& writerQa = model.analysis().quadrant(Quadrant::NE);
  const auto& cloneQa = clone->quadrant(Quadrant::NE);
  EXPECT_GT(PagedGrid<std::uint8_t>::sharedPageCount(
                writerQa.labels().pages(), cloneQa.labels().pages()),
            0u);

  // Writer keeps churning; the clone's bytes must not move.
  const Point toggle{15, 15};
  const bool wasFaulty = model.faults().isFaulty(toggle);
  const std::uint8_t before = cloneQa.labels().raw(
      cloneQa.frame().toLocal(toggle));
  if (wasFaulty) {
    model.removeFault(toggle);
  } else {
    model.addFault(toggle);
  }
  EXPECT_EQ(cloneQa.labels().raw(cloneQa.frame().toLocal(toggle)), before);
  EXPECT_NE(writerQa.labels().isFaulty(writerQa.frame().toLocal(toggle)),
            wasFaulty);
}

// --------------------------------------------------- service epoch pages

TEST(CowStorageTest, PublishedEpochsSharePagesWithPredecessor) {
  const Mesh2D mesh = Mesh2D::square(32);
  Rng rng(91);
  const FaultSet faults = injectUniform(mesh, 60, rng);
  ServiceConfig cfg;
  cfg.threads = 2;
  RouteService service(faults, cfg);
  std::vector<Query> batch;
  for (Coord i = 1; i < 30; ++i) batch.push_back({{0, 0}, {i, 30}});
  service.serve(batch);

  const auto prev = service.snapshot();
  Point toggle{9, 9};
  while (prev->faults().isFaulty(toggle)) toggle.x += 1;
  service.applyAddFault(toggle);
  const auto next = service.snapshot();

  // Fault set and labels share pages across the epoch boundary...
  EXPECT_GT(PagedGrid<std::uint8_t>::sharedPageCount(
                prev->faults().pages(), next->faults().pages()),
            0u);
  for (int q = 0; q < 4; ++q) {
    const auto quad = static_cast<Quadrant>(q);
    EXPECT_GT(PagedGrid<std::uint8_t>::sharedPageCount(
                  prev->analysis().quadrant(quad).labels().pages(),
                  next->analysis().quadrant(quad).labels().pages()),
              0u);
  }
  // ...and the writes never alias: the pinned predecessor still answers
  // from its own frozen fault state.
  EXPECT_FALSE(prev->faults().isFaulty(toggle));
  EXPECT_TRUE(next->faults().isFaulty(toggle));

  // The successor inherited the predecessor's compiled set (every column
  // present before is present, patched or dropped — never silently lost).
  EXPECT_EQ(next->compiledColumns() +
                (next->faults().isFaulty(toggle) &&
                         prev->column(mesh.id(toggle)) != nullptr
                     ? 1u
                     : 0u),
            prev->compiledColumns());
}

TEST(CowStorageTest, DeepCloneBaselineSharesNoPages) {
  const Mesh2D mesh = Mesh2D::square(24);
  Rng rng(92);
  const FaultSet faults = injectUniform(mesh, 40, rng);
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.storage = SnapshotStorage::DeepClone;
  RouteService service(faults, cfg);
  service.serve({{{0, 0}, {20, 20}}, {{1, 1}, {12, 20}}});

  const auto prev = service.snapshot();
  Point toggle{11, 4};
  while (prev->faults().isFaulty(toggle)) toggle.x += 1;
  service.applyAddFault(toggle);
  const auto next = service.snapshot();

  EXPECT_EQ(PagedGrid<std::uint8_t>::sharedPageCount(
                prev->faults().pages(), next->faults().pages()),
            0u);
  for (int q = 0; q < 4; ++q) {
    const auto quad = static_cast<Quadrant>(q);
    EXPECT_EQ(PagedGrid<std::uint8_t>::sharedPageCount(
                  prev->analysis().quadrant(quad).labels().pages(),
                  next->analysis().quadrant(quad).labels().pages()),
              0u);
  }
  EXPECT_EQ(
      PagedGrid<std::shared_ptr<const ColumnVariant>>::sharedPageCount(
          prev->columnPages(), next->columnPages()),
      0u);
}

TEST(CowStorageTest, CowAndDeepCloneServicesServeBitIdentically) {
  const Mesh2D mesh = Mesh2D::square(24);
  Rng rng(93);
  const FaultSet faults = injectUniform(mesh, 50, rng);
  std::vector<Query> batch;
  Rng qrng(94);
  for (int i = 0; i < 150; ++i) {
    batch.push_back({randomHealthy(faults, qrng), randomHealthy(faults, qrng)});
  }

  auto run = [&](SnapshotStorage storage) {
    ServiceConfig cfg;
    cfg.threads = 2;
    cfg.storage = storage;
    RouteService service(faults, cfg);
    std::vector<BatchResult> results;
    Rng churn(95);
    for (int round = 0; round < 6; ++round) {
      results.push_back(service.serve(batch, /*wantPaths=*/true));
      const Point p{static_cast<Coord>(churn.below(24)),
                    static_cast<Coord>(churn.below(24))};
      if (service.snapshot()->faults().isFaulty(p)) {
        service.applyRemoveFault(p);
      } else {
        service.applyAddFault(p);
      }
    }
    return results;
  };

  const auto cow = run(SnapshotStorage::Cow);
  const auto deep = run(SnapshotStorage::DeepClone);
  ASSERT_EQ(cow.size(), deep.size());
  for (std::size_t r = 0; r < cow.size(); ++r) {
    ASSERT_EQ(cow[r].epoch, deep[r].epoch);
    ASSERT_EQ(cow[r].status, deep[r].status);
    EXPECT_EQ(cow[r].hops, deep[r].hops);
    EXPECT_EQ(cow[r].paths, deep[r].paths);
  }
}

// -------------------------------------------- concurrent lazy first touch

TEST(CowStorageTest, ConcurrentQuadrantFirstTouchIsSafe) {
  const Mesh2D mesh = Mesh2D::square(24);
  Rng rng(96);
  const FaultSet faults = injectUniform(mesh, 60, rng);
  const FaultAnalysis analysis(faults);  // nothing materialized yet

  std::vector<std::thread> threads;
  std::vector<std::size_t> unsafeCounts(8, 0);
  for (std::size_t t = 0; t < unsafeCounts.size(); ++t) {
    threads.emplace_back([&, t] {
      std::size_t total = 0;
      for (int q = 0; q < 4; ++q) {
        total += analysis.quadrant(static_cast<Quadrant>(q)).unsafeCount();
      }
      unsafeCounts[t] = total;
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t t = 1; t < unsafeCounts.size(); ++t) {
    EXPECT_EQ(unsafeCounts[t], unsafeCounts[0]);
  }
  // Exactly one QuadrantAnalysis per quadrant: every thread reads the
  // same object.
  for (int q = 0; q < 4; ++q) {
    const auto quad = static_cast<Quadrant>(q);
    EXPECT_EQ(&analysis.quadrant(quad), &analysis.quadrant(quad));
  }
}

// ----------------------------------------------------- liveMccs() helper

TEST(CowStorageTest, LiveMccsSkipsRetiredSlots) {
  const Mesh2D mesh = Mesh2D::square(12);
  DynamicFaultModel model(mesh);
  model.analysis().materializeAll();  // patch quadrants in place from here
  model.addFault({3, 3});
  model.addFault({8, 8});
  model.addFault({3, 4});
  model.removeFault({8, 8});  // leaves a tombstone slot behind

  const auto& qa = model.analysis().quadrant(Quadrant::NE);
  std::size_t live = 0;
  for (const Mcc& mcc : qa.liveMccs()) {
    EXPECT_GE(mcc.id, 0);
    EXPECT_EQ(qa.mccs()[static_cast<std::size_t>(mcc.id)].id, mcc.id);
    ++live;
  }
  EXPECT_EQ(live, qa.mccCount());
  EXPECT_LT(live, qa.mccs().size());  // the tombstone is really there
}

}  // namespace
}  // namespace meshrt
