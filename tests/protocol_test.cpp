// Equivalence of the distributed information-propagation protocol with the
// oracle knowledge bases: per-node stored triples must match exactly for
// every model, plus sanity properties of the message-passing substrate.
#include <gtest/gtest.h>

#include "fault/analysis.h"
#include "info/knowledge.h"
#include "sim/network.h"
#include "sim/propagation_protocol.h"
#include "test_util.h"

namespace meshrt {
namespace {

TEST(SyncNetworkTest, DeliversNeighborMessagesInRounds) {
  const Mesh2D mesh = Mesh2D::square(4);
  SyncNetwork<int> net(mesh);
  std::vector<int> log;
  net.post({1, 1}, 3);
  const std::size_t rounds = net.run(
      [&](Point self, const int& hops, SyncNetwork<int>::Tx& tx) {
        log.push_back(hops);
        (void)self;
        if (hops > 0) tx.send(Dir::PlusX, hops - 1);
      },
      100);
  // 3 at (1,1) -> 2 at (2,1) -> 1 at (3,1); the next send falls off the
  // mesh edge and is dropped.
  EXPECT_EQ(rounds, 3u);
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(net.messagesDelivered(), 3u);
  EXPECT_EQ(net.involvedCount(), 3u);
}

TEST(SyncNetworkTest, BorderSendsAreDropped) {
  const Mesh2D mesh = Mesh2D::square(2);
  SyncNetwork<int> net(mesh);
  net.post({1, 1}, 1);
  net.run(
      [&](Point, const int&, SyncNetwork<int>::Tx& tx) {
        tx.send(Dir::PlusX, 9);  // off-mesh: silently dropped
      },
      10);
  EXPECT_EQ(net.messagesDelivered(), 1u);
}

class ProtocolEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ProtocolEquivalence, PerNodeKnowledgeMatchesOracle) {
  const auto [seed, modelIdx] = GetParam();
  const auto model = static_cast<InfoModel>(modelIdx);
  Rng rng(static_cast<std::uint64_t>(seed) * 8191 + 101);
  const Mesh2D mesh = Mesh2D::square(28);
  const FaultSet faults =
      injectUniform(mesh, 30 + 15 * static_cast<std::size_t>(seed), rng);
  const QuadrantAnalysis qa(faults, Quadrant::NE);

  const QuadrantInfo oracle(qa, model);
  const PropagationResult proto = runInfoPropagation(qa, model);

  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      const Point p{x, y};
      const auto node = static_cast<std::size_t>(mesh.id(p));
      const auto oi = oracle.typeIKnown(p);
      ASSERT_EQ(std::vector<int>(oi.begin(), oi.end()), proto.knownI[node])
          << infoModelName(model) << " type-I at " << p.str();
      const auto oii = oracle.typeIIKnown(p);
      ASSERT_EQ(std::vector<int>(oii.begin(), oii.end()),
                proto.knownII[node])
          << infoModelName(model) << " type-II at " << p.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModels, ProtocolEquivalence,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 3)));

TEST(ProtocolCost, B2CostsMoreMessagesThanB3ThanB1) {
  Rng rng(31337);
  const Mesh2D mesh = Mesh2D::square(32);
  const FaultSet faults = injectUniform(mesh, 80, rng);
  const QuadrantAnalysis qa(faults, Quadrant::NE);
  const auto b1 = runInfoPropagation(qa, InfoModel::B1);
  const auto b2 = runInfoPropagation(qa, InfoModel::B2);
  const auto b3 = runInfoPropagation(qa, InfoModel::B3);
  EXPECT_LT(b1.messages, b3.messages);
  EXPECT_LT(b3.messages, b2.messages);
  EXPECT_LE(b1.involvedNodes, b3.involvedNodes);
  EXPECT_LE(b3.involvedNodes, b2.involvedNodes);
}

TEST(ProtocolCost, NoFaultsNoTraffic) {
  const Mesh2D mesh = Mesh2D::square(16);
  const QuadrantAnalysis qa(FaultSet(mesh), Quadrant::NE);
  const auto res = runInfoPropagation(qa, InfoModel::B2);
  EXPECT_EQ(res.messages, 0u);
  EXPECT_EQ(res.involvedNodes, 0u);
}

}  // namespace
}  // namespace meshrt
