// Tests for the dynamic-fault sweep: the SweepEngine determinism contract
// must survive the online fault path (bitwise-identical output for any
// thread count), and the headline metrics must behave sanely.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/dynamic_sweep.h"

namespace meshrt {
namespace {

DynamicSweepConfig tinyDynamicConfig() {
  DynamicSweepConfig cfg;
  cfg.base.meshSize = 20;
  cfg.base.faultLevels = {0, 20, 40};
  cfg.base.configsPerLevel = 3;
  cfg.base.pairsPerConfig = 4;
  cfg.base.seed = 424242;
  cfg.base.threads = 2;
  cfg.epochs = 4;
  cfg.repairProbability = 0.1;
  return cfg;
}

const std::vector<std::string> kRouters{"rb1", "rb2", "rb3"};

void expectBitwiseEqual(const std::vector<SweepRow>& a,
                        const std::vector<SweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].faults, b[i].faults);
    const auto names = a[i].metrics.names();
    ASSERT_EQ(names, b[i].metrics.names());
    for (const std::string& name : names) {
      if (name.rfind("reroute_extra:", 0) == 0 ||
          name == metric::kActiveFaults) {
        const Accumulator& x = a[i].metrics.acc(name);
        const Accumulator& y = b[i].metrics.acc(name);
        EXPECT_EQ(x.count(), y.count()) << name;
        EXPECT_EQ(x.min(), y.min()) << name;
        EXPECT_EQ(x.max(), y.max()) << name;
        EXPECT_EQ(x.mean(), y.mean()) << name;
        EXPECT_EQ(x.variance(), y.variance()) << name;
      } else {
        const RatioCounter& x = a[i].metrics.ratio(name);
        const RatioCounter& y = b[i].metrics.ratio(name);
        EXPECT_EQ(x.hits(), y.hits()) << name;
        EXPECT_EQ(x.total(), y.total()) << name;
      }
    }
  }
}

TEST(DynamicSweepTest, BitwiseIdenticalAcrossThreadCounts) {
  DynamicSweepConfig one = tinyDynamicConfig();
  one.base.threads = 1;
  DynamicSweepConfig four = tinyDynamicConfig();
  four.base.threads = 4;
  const auto a = DynamicSweep(one, kRouters).run();
  const auto b = DynamicSweep(four, kRouters).run();
  expectBitwiseEqual(a, b);
}

TEST(DynamicSweepTest, PermutationPatternsKeepDeterminismAndRb2Success) {
  for (TrafficPattern pattern :
       {TrafficPattern::Tornado, TrafficPattern::BitComplement}) {
    DynamicSweepConfig one = tinyDynamicConfig();
    one.pattern = pattern;
    one.base.threads = 1;
    DynamicSweepConfig four = one;
    four.base.threads = 4;
    const auto a = DynamicSweep(one, {"rb2"}).run();
    const auto b = DynamicSweep(four, {"rb2"}).run();
    expectBitwiseEqual(a, b);
    // Theorem 1 does not care how the pairs were chosen: every routed
    // safe-connected pair still hits the safe-node optimum.
    for (const SweepRow& row : a) {
      const RatioCounter& success =
          row.metrics.ratio(metric::success("rb2"));
      if (success.total() > 0) {
        EXPECT_EQ(success.hits(), success.total());
      }
    }
  }
}

TEST(DynamicSweepTest, Rb2SucceedsAndZeroArrivalsNeverReroute) {
  const auto rows = DynamicSweep(tinyDynamicConfig(), kRouters).run();
  ASSERT_EQ(rows.size(), 3u);

  // Level 0: no arrivals, no repairs of anything, so every pre-fault
  // route survives and succeeds.
  const auto& calm = rows.front().metrics;
  for (const std::string& key : kRouters) {
    EXPECT_EQ(calm.ratio(metric::rerouted(key)).hits(), 0u) << key;
    EXPECT_DOUBLE_EQ(calm.ratio(metric::success(key)).percent(), 100.0)
        << key;
  }
  EXPECT_DOUBLE_EQ(calm.ratio(metric::kPairSurvived).percent(), 100.0);
  EXPECT_DOUBLE_EQ(calm.acc(metric::kActiveFaults).max(), 0.0);

  // Theorem 1 under churn: RB2 re-routes are always safe-node optimal.
  for (const auto& row : rows) {
    const RatioCounter& rb2 = row.metrics.ratio(metric::success("rb2"));
    if (rb2.total() == 0) continue;
    EXPECT_DOUBLE_EQ(rb2.percent(), 100.0) << row.faults << " arrivals";
  }

  // Faults actually arrived at the non-zero levels.
  EXPECT_GT(rows.back().metrics.acc(metric::kActiveFaults).mean(), 0.0);
}

TEST(DynamicSweepTest, RejectsBitReversalOnNonPow2Mesh) {
  DynamicSweepConfig cfg = tinyDynamicConfig();  // meshSize 20
  cfg.pattern = TrafficPattern::BitReversal;
  EXPECT_THROW(DynamicSweep(cfg, {"rb2"}), std::invalid_argument);
  cfg.base.meshSize = 16;
  EXPECT_NO_THROW(DynamicSweep(cfg, {"rb2"}));
}

TEST(DynamicSweepTest, RejectsBadConfigs) {
  DynamicSweepConfig cfg = tinyDynamicConfig();
  cfg.epochs = 0;
  EXPECT_THROW(DynamicSweep(cfg, kRouters), std::invalid_argument);
  EXPECT_THROW(DynamicSweep(tinyDynamicConfig(), {"rb2", "rb2"}),
               std::invalid_argument);
  EXPECT_THROW(DynamicSweep(tinyDynamicConfig(), {"no-such-router"}),
               std::invalid_argument);
}

TEST(DynamicSweepTest, PoissonDrawMatchesMeanRoughly) {
  Rng rng(7);
  for (double mean : {0.5, 4.0, 60.0, 300.0}) {
    double sum = 0;
    const int draws = 400;
    for (int i = 0; i < draws; ++i) {
      sum += static_cast<double>(poissonDraw(rng, mean));
    }
    const double avg = sum / draws;
    EXPECT_NEAR(avg, mean, mean * 0.25 + 0.5) << "mean " << mean;
  }
  EXPECT_EQ(poissonDraw(rng, 0.0), 0u);
}

}  // namespace
}  // namespace meshrt
