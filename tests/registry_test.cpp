// Tests for the router registry: every built-in key round-trips through
// name -> factory -> working router, and unknown names fail cleanly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/analysis.h"
#include "fault/fault_set.h"
#include "mesh/mesh.h"
#include "route/registry.h"
#include "route/validate.h"

namespace meshrt {
namespace {

TEST(RouterRegistryTest, EveryBuiltinRoundTrips) {
  const Mesh2D mesh = Mesh2D::square(8);
  const FaultSet faults(mesh);  // fault-free
  const FaultAnalysis fa(faults);
  const RouterContext ctx{&faults, &fa};

  const auto keys = RouterRegistry::global().keys();
  ASSERT_GE(keys.size(), 8u);
  for (const auto& key : keys) {
    SCOPED_TRACE(key);
    EXPECT_TRUE(RouterRegistry::global().contains(key));
    EXPECT_FALSE(RouterRegistry::global().displayName(key).empty());
    auto router = RouterRegistry::global().create(key, ctx);
    ASSERT_NE(router, nullptr);
    EXPECT_FALSE(router->name().empty());
    // In a fault-free mesh every router must deliver a Manhattan-shortest
    // valid path.
    const Point s{0, 0};
    const Point d{7, 5};
    const RouteResult res = router->route(s, d);
    EXPECT_TRUE(res.delivered);
    EXPECT_TRUE(isValidPath(faults, s, d, res.path));
    EXPECT_EQ(res.hops(), manhattan(s, d));
  }
}

TEST(RouterRegistryTest, ExpectedBuiltinKeysExist) {
  const auto& reg = RouterRegistry::global();
  for (const char* key :
       {"ecube", "safety", "rb1", "rb2", "rb2-literal", "rb3", "rb3-contact",
        "rb3-full", "optimal", "bfs"}) {
    EXPECT_TRUE(reg.contains(key)) << key;
  }
}

TEST(RouterRegistryTest, UnknownNameErrorsCleanly) {
  const RouterContext ctx{};
  EXPECT_THROW(RouterRegistry::global().create("no-such-router", ctx),
               std::invalid_argument);
  try {
    RouterRegistry::global().at("no-such-router");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message names the offender and lists the known keys.
    EXPECT_NE(std::string(e.what()).find("no-such-router"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rb2"), std::string::npos);
  }
}

TEST(RouterRegistryTest, MissingContextPiecesAreReported) {
  const RouterContext empty{};
  EXPECT_THROW(RouterRegistry::global().create("ecube", empty),
               std::invalid_argument);
  EXPECT_THROW(RouterRegistry::global().create("rb2", empty),
               std::invalid_argument);
}

TEST(RouterRegistryTest, DuplicateAndEmptyRegistrationRejected) {
  RouterRegistry& reg = RouterRegistry::global();
  EXPECT_THROW(reg.add("rb2", "dup", "duplicate key",
                       [](const RouterContext&) -> std::unique_ptr<Router> {
                         return nullptr;
                       }),
               std::invalid_argument);
  EXPECT_THROW(reg.add("", "anon", "empty key",
                       [](const RouterContext&) -> std::unique_ptr<Router> {
                         return nullptr;
                       }),
               std::invalid_argument);
}

TEST(RouterRegistryTest, MakeRoutersPreservesOrder) {
  const Mesh2D mesh = Mesh2D::square(6);
  const FaultSet faults(mesh);
  const FaultAnalysis fa(faults);
  const RouterContext ctx{&faults, &fa};
  const auto routers = makeRouters({"rb3", "ecube"}, ctx);
  ASSERT_EQ(routers.size(), 2u);
  EXPECT_EQ(routers[0]->name(), "RB3");
  EXPECT_EQ(routers[1]->name(), "E-cube");
}

}  // namespace
}  // namespace meshrt
