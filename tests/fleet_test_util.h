// Shared helpers for the fleet differential suites (tests/fleet_test.cpp
// and the slow full-matrix suite in tests/slow/): batch generators, the
// interior-fault injector whose configurations certify every shard
// border-clear, per-key service configs, and the fleet-vs-single
// differential assertion.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "route/validate.h"
#include "service/fleet.h"

namespace meshrt {
namespace fleettest {

inline std::vector<Query> randomBatch(const Mesh2D& mesh, std::size_t count,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(
        {{static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))},
         {static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))}});
  }
  return batch;
}

/// Random sources against a small destination pool: differential
/// coverage without compiling a column per query (column compiles are
/// the cost that dwarfs everything else at 64x64).
inline std::vector<Query> pooledBatch(const Mesh2D& mesh, std::size_t count,
                                      std::size_t poolSize,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pool;
  for (std::size_t i = 0; i < poolSize; ++i) {
    pool.push_back({static_cast<Coord>(
                        rng.below(static_cast<std::uint64_t>(mesh.width()))),
                    static_cast<Coord>(rng.below(
                        static_cast<std::uint64_t>(mesh.height())))});
  }
  std::vector<Query> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(
        {{static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))},
         pool[rng.below(pool.size())]});
  }
  return batch;
}

/// True when a fault at p keeps EVERY covering shard border-clear with
/// the given margin (p is at least `margin` cells from every artificial
/// wall of every local rectangle containing it).
inline bool interiorCell(const ShardLayout& layout, Point p, Coord margin) {
  for (const std::size_t k : layout.covering(p)) {
    const Rect& l = layout.local(k);
    const Point q = layout.toLocal(k, p);
    if (layout.artificialWall(k, 0) && q.x < margin) return false;
    if (layout.artificialWall(k, 1) && q.x > l.width() - 1 - margin) {
      return false;
    }
    if (layout.artificialWall(k, 2) && q.y < margin) return false;
    if (layout.artificialWall(k, 3) && q.y > l.height() - 1 - margin) {
      return false;
    }
  }
  return true;
}

/// `count` uniform faults restricted to interior cells: every shard of
/// `layout` is border-clear by construction.
inline FaultSet injectInterior(const ShardLayout& layout, std::size_t count,
                               Coord margin, Rng& rng) {
  const Mesh2D& mesh = layout.mesh();
  FaultSet faults(mesh);
  std::size_t placed = 0;
  while (placed < count) {
    const Point p{static_cast<Coord>(
                      rng.below(static_cast<std::uint64_t>(mesh.width()))),
                  static_cast<Coord>(
                      rng.below(static_cast<std::uint64_t>(mesh.height())))};
    if (faults.isFaulty(p) || !interiorCell(layout, p, margin)) continue;
    faults.add(p);
    ++placed;
  }
  return faults;
}

/// Knowledge models the key's routers consume (capturing everything for
/// every key makes snapshot capture the dominant cost at 64x64).
inline std::vector<InfoModel> captureFor(const std::string& key) {
  if (key == "rb1") return {InfoModel::B1};
  if (key.starts_with("rb3")) return {InfoModel::B3};
  return {};
}

/// Keys whose labels are NOT functions of the local fault window: the
/// safety-level relaxation propagates across the whole mesh, so a
/// shard's labels legitimately differ from the full-mesh labels near
/// artificial walls (the fleet can even deliver in fewer hops, and
/// deliver where the full-mesh heuristic diverges). For these the
/// differential asserts path validity, never bit-equality.
inline bool nonLocalKey(const std::string& key) { return key == "safety"; }

inline FleetConfig fleetConfig(const std::string& key, std::size_t grid) {
  FleetConfig cfg;
  cfg.service.routerKey = key;
  cfg.service.threads = 2;
  cfg.service.captureKnowledge = captureFor(key);
  cfg.grid = grid;
  return cfg;
}

inline ServiceConfig singleConfig(const std::string& key) {
  ServiceConfig cfg;
  cfg.routerKey = key;
  cfg.threads = 2;
  cfg.captureKnowledge = captureFor(key);
  return cfg;
}

/// Differential check of one served fleet batch against the single
/// full-mesh service: intra-shard queries bit-for-bit when the key is
/// local AND the owning shard is certified border-clear (`allCertified`
/// short-circuits the certificate in the interior-fault regime); every
/// delivered path globally valid and exactly hop-accounted.
inline void expectFleetMatchesSingle(ServiceFleet& fleet,
                                     RouteService& single,
                                     const FaultSet& faults,
                                     const std::vector<Query>& batch,
                                     bool allCertified) {
  const FleetBatchResult fr = fleet.serve(batch, /*wantPaths=*/true);
  const BatchResult sr = single.serve(batch, /*wantPaths=*/true);
  const ShardLayout& layout = fleet.layout();
  const bool localKey = !nonLocalKey(fleet.config().service.routerKey);
  ASSERT_EQ(fr.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i) + " " + batch[i].s.str() +
                 "->" + batch[i].d.str());
    const std::size_t ks = layout.owner(batch[i].s);
    const std::size_t kd = layout.owner(batch[i].d);
    if (fr.delivered(i)) {
      ASSERT_FALSE(fr.paths[i].empty());
      EXPECT_TRUE(isValidPath(faults, batch[i].s, batch[i].d, fr.paths[i]));
      EXPECT_EQ(fr.hops[i],
                static_cast<std::int32_t>(fr.paths[i].size()) - 1);
    }
    if (ks == kd) {
      const bool certified =
          localKey &&
          (allCertified ||
           shardBorderClear(layout, ks, fr.pinned[ks]->faults()));
      if (certified) {
        EXPECT_EQ(fr.status[i], sr.status[i]);
        if (fr.delivered(i)) {
          EXPECT_EQ(fr.hops[i], sr.hops[i]);
        }
      }
    } else {
      // Endpoint faultiness is owner-epoch state == global state here.
      EXPECT_EQ(fr.status[i] == ServeStatus::EndpointFaulty,
                sr.status[i] == ServeStatus::EndpointFaulty);
    }
  }
}

/// Validates one served fleet batch purely against its own pinned
/// epochs: structural path invariants, plus — via the stitch-segment
/// records — every path cell healthy in the pinned snapshot of the
/// shard that chased it, and every crossing healthy on both sides.
/// Shared by the churn and chaos suites: it needs no ground truth, so it
/// holds even while writers (or the supervisor) are mutating the fleet.
inline void validateAgainstPinnedEpochs(const ShardLayout& layout,
                                        const std::vector<Query>& batch,
                                        const FleetBatchResult& r) {
  ASSERT_EQ(r.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i) + " " + batch[i].s.str() +
                 "->" + batch[i].d.str());
    if (!r.delivered(i)) continue;
    const auto& path = r.paths[i];
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), batch[i].s);
    EXPECT_EQ(path.back(), batch[i].d);
    EXPECT_EQ(r.hops[i], static_cast<std::int32_t>(path.size()) - 1);
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      EXPECT_EQ(manhattan(path[j], path[j + 1]), 1);
    }
    const auto& segs = r.segments[i];
    ASSERT_FALSE(segs.empty());
    ASSERT_EQ(segs.front().begin, 0u);
    for (std::size_t j = 0; j < segs.size(); ++j) {
      const std::size_t k = segs[j].shard;
      const std::size_t begin = segs[j].begin;
      const std::size_t end =
          j + 1 < segs.size() ? segs[j + 1].begin : path.size();
      ASSERT_LT(begin, end);
      const FaultSet& pinnedFaults = r.pinned[k]->faults();
      for (std::size_t c = begin; c < end; ++c) {
        ASSERT_TRUE(layout.local(k).contains(path[c]));
        EXPECT_TRUE(pinnedFaults.isHealthy(layout.toLocal(k, path[c])))
            << "cell " << path[c].str() << " faulty in shard " << k
            << " pinned epoch " << r.shardEpochs[k];
      }
      // The crossing into this segment is healthy on BOTH sides it
      // joins (the previous shard sees the entry cell in its halo).
      if (j > 0) {
        const std::size_t prev = segs[j - 1].shard;
        EXPECT_TRUE(layout.local(prev).contains(path[begin]));
        EXPECT_TRUE(r.pinned[prev]->faults().isHealthy(
            layout.toLocal(prev, path[begin])));
        EXPECT_TRUE(pinnedFaults.isHealthy(
            layout.toLocal(k, path[begin - 1])));
      }
    }
  }
}

}  // namespace fleettest
}  // namespace meshrt
