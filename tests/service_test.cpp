// Tests for the route-query service stack: compiled next-hop tables
// (route/route_table.h), epoch snapshots with refcount reclamation
// (common/epoch.h) and the concurrent RouteService (src/service/).
//
// The key contracts:
//  - table-served results are bit-identical to the hop-router reference
//    (iterated fresh first hops — the spec the table realizes) for EVERY
//    registry key, and bit-identical to the router's own paths for the
//    hop-consistent BFS oracle;
//  - batched serving is bitwise deterministic across thread counts;
//  - under live churn, every served path is valid against the epoch it
//    was served from, and events patch only the chase-affected entries;
//  - retired snapshots survive exactly until their last reader drains.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/rng.h"
#include "fault/injectors.h"
#include "route/route_table.h"
#include "route/validate.h"
#include "service/route_service.h"
#include "test_util.h"

namespace meshrt {
namespace {

// ---------------------------------------------------------------- helpers

/// The mathematical spec of per-hop table serving: at every node ask the
/// router afresh and take one hop. Table compile + chase must reproduce
/// this exactly (same statuses, hops and paths), bounded the same way.
ServedRoute hopReference(Router& router, const FaultSet& faults, Point s,
                         Point d) {
  ServedRoute out;
  out.path.push_back(s);
  if (faults.isFaulty(s) || faults.isFaulty(d)) {
    out.status = ServeStatus::EndpointFaulty;
    return out;
  }
  if (s == d) {
    out.status = ServeStatus::Delivered;
    return out;
  }
  Point u = s;
  const auto maxSteps = static_cast<std::size_t>(faults.mesh().nodeCount());
  for (std::size_t step = 0; step <= maxSteps; ++step) {
    if (u == d) {
      out.status = ServeStatus::Delivered;
      out.hops = static_cast<Distance>(step);
      return out;
    }
    const RouteResult res = router.route(u, d);
    if (!res.delivered || res.path.size() < 2) {
      out.status = ServeStatus::NoRoute;
      return out;
    }
    u = res.path[1];
    out.path.push_back(u);
  }
  out.status = ServeStatus::Diverged;
  return out;
}

std::vector<Query> randomBatch(const Mesh2D& mesh, std::size_t count,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(
        {{static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))},
         {static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))}});
  }
  return batch;
}

void expectSameRoute(const ServedRoute& a, const ServedRoute& b,
                     bool comparePaths = true) {
  ASSERT_EQ(a.status, b.status);
  if (a.delivered()) {
    EXPECT_EQ(a.hops, b.hops);
  }
  if (comparePaths) {
    EXPECT_EQ(a.path, b.path);
  }
}

/// Entry i of a SoA batch result against a ServedRoute reference.
void expectSameRoute(const BatchResult& r, std::size_t i,
                     const ServedRoute& b, bool comparePaths = true) {
  ASSERT_EQ(r.status[i], b.status);
  if (r.delivered(i)) {
    EXPECT_EQ(r.hops[i], static_cast<std::int32_t>(b.hops));
  }
  if (comparePaths) {
    ASSERT_LT(i, r.paths.size());
    EXPECT_EQ(r.paths[i], b.path);
  }
}

/// Whole-batch bitwise equality (the determinism contract).
void expectSameBatch(const BatchResult& a, const BatchResult& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_EQ(a.paths, b.paths);
}

// ------------------------------------------------- epoch reclamation box

TEST(SnapshotBoxTest, RetiredSnapshotSurvivesUntilLastReaderDrains) {
  struct Payload {
    explicit Payload(std::atomic<int>& gauge) : alive(&gauge) {
      alive->fetch_add(1);
    }
    ~Payload() { alive->fetch_sub(1); }
    std::atomic<int>* alive;
  };
  std::atomic<int> alive{0};
  SnapshotBox<Payload> box;
  box.publish(std::make_unique<const Payload>(alive));
  EXPECT_EQ(box.liveCount(), 1u);

  auto pinned = box.acquire();
  box.publish(std::make_unique<const Payload>(alive));
  box.publish(std::make_unique<const Payload>(alive));
  // The pinned first epoch plus the current one are alive; the middle
  // epoch had no readers and died on publish.
  EXPECT_EQ(alive.load(), 2);
  EXPECT_EQ(box.liveCount(), 2u);
  EXPECT_EQ(box.published(), 3u);

  pinned.reset();
  EXPECT_EQ(alive.load(), 1);
  EXPECT_EQ(box.liveCount(), 1u);
}

// ------------------------------------------------------------ route table

TEST(RouteTableTest, TableServedMatchesHopReferenceForEveryRegistryKey) {
  const Mesh2D mesh = Mesh2D::square(12);
  for (std::uint64_t cfgSeed : {1u, 2u}) {
    Rng rng = Rng::forStream(2024, cfgSeed);
    const FaultSet faults = injectUniform(mesh, 18, rng);
    const FaultAnalysis fa(faults);
    const RouterContext ctx{&faults, &fa};
    const auto batch = randomBatch(mesh, 90, 77 + cfgSeed);
    for (const auto& key : RouterRegistry::global().keys()) {
      if (key.starts_with("table:")) continue;
      SCOPED_TRACE(key + " cfg " + std::to_string(cfgSeed));
      const auto direct = RouterRegistry::global().create(key, ctx);
      auto wrapped =
          RouterRegistry::global().create("table:" + key, ctx);
      auto* tableized = dynamic_cast<TableizedRouter*>(wrapped.get());
      ASSERT_NE(tableized, nullptr);
      for (const Query& q : batch) {
        const ServedRoute ref = hopReference(*direct, faults, q.s, q.d);
        const ServedRoute served = tableized->serve(q.s, q.d);
        expectSameRoute(served, ref);
      }
    }
  }
}

TEST(RouteTableTest, BfsOracleTablePreservesExactRouterPaths) {
  // The BFS oracle is hop-consistent (route(u,d)'s tail IS route(next,d)),
  // so its table must reproduce the router's own paths bit for bit, not
  // just the hop-reference's.
  const Mesh2D mesh = Mesh2D::square(12);
  Rng rng(5);
  const FaultSet faults = injectUniform(mesh, 20, rng);
  const FaultAnalysis fa(faults);
  const RouterContext ctx{&faults, &fa};
  const auto direct = RouterRegistry::global().create("optimal", ctx);
  auto wrapped = RouterRegistry::global().create("table:optimal", ctx);
  auto* tableized = dynamic_cast<TableizedRouter*>(wrapped.get());
  ASSERT_NE(tableized, nullptr);
  for (const Query& q : randomBatch(mesh, 120, 9)) {
    if (faults.isFaulty(q.s) || faults.isFaulty(q.d)) continue;
    const RouteResult res = direct->route(q.s, q.d);
    const ServedRoute served = tableized->serve(q.s, q.d);
    ASSERT_EQ(served.delivered(), res.delivered);
    if (res.delivered) {
      EXPECT_EQ(served.path, res.path);
    }
  }
}

TEST(RouteTableTest, ChaseUpstreamFindsExactlyTheTrajectoriesThroughMask) {
  const Mesh2D mesh = Mesh2D::square(10);
  Rng rng(3);
  const FaultSet faults = injectUniform(mesh, 12, rng);
  const FaultAnalysis fa(faults);
  const RouterContext ctx{&faults, &fa};
  const auto router = RouterRegistry::global().create("rb2", ctx);
  const Point dest{8, 8};
  ASSERT_TRUE(faults.isHealthy(dest));
  const RouteColumn column = compileRouteColumn(*router, faults, dest);

  const Point target{4, 4};
  const auto upstream =
      chaseUpstream(column, mesh, std::vector<NodeId>{mesh.id(target)});

  // Oracle: chase every source and check whether the trajectory (the
  // chase path, including the start) touches the target.
  for (NodeId id = 0; id < mesh.nodeCount(); ++id) {
    const Point s = mesh.point(id);
    const ServedRoute chase = chaseColumn(
        column, mesh, s, static_cast<std::size_t>(mesh.nodeCount()), true);
    bool touches = false;
    for (Point p : chase.path) touches |= (p == target);
    const bool listed =
        std::find(upstream.begin(), upstream.end(), id) != upstream.end();
    EXPECT_EQ(listed, touches) << "node " << s.str();
  }
}

// ---------------------------------------------------------- route service

TEST(ServiceTest, BatchedServeMatchesTableizedRouterForEveryKey) {
  const Mesh2D mesh = Mesh2D::square(12);
  Rng rng(11);
  const FaultSet faults = injectUniform(mesh, 20, rng);
  const FaultAnalysis fa(faults);
  const RouterContext ctx{&faults, &fa};
  const auto batch = randomBatch(mesh, 80, 13);
  std::vector<Query> queries = batch;
  for (const auto& key : RouterRegistry::global().keys()) {
    if (key.starts_with("table:")) continue;
    SCOPED_TRACE(key);
    ServiceConfig cfg;
    cfg.routerKey = key;
    cfg.threads = 2;
    cfg.captureKnowledge = {InfoModel::B1, InfoModel::B3};
    RouteService service(faults, cfg);
    auto wrapped = RouterRegistry::global().create("table:" + key, ctx);
    auto* tableized = dynamic_cast<TableizedRouter*>(wrapped.get());
    ASSERT_NE(tableized, nullptr);
    const BatchResult result = service.serve(queries, /*wantPaths=*/true);
    EXPECT_EQ(result.epoch, 0u);
    ASSERT_EQ(result.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expectSameRoute(result, i,
                      tableized->serve(queries[i].s, queries[i].d));
    }
  }
}

TEST(ServiceTest, BatchedServeBitwiseIdenticalAcrossThreadCounts) {
  const Mesh2D mesh = Mesh2D::square(24);
  Rng rng(21);
  const FaultSet faults = injectUniform(mesh, 80, rng);
  const auto queries = randomBatch(mesh, 300, 31);
  std::vector<BatchResult> results;
  for (std::size_t threads : {1u, 4u}) {
    ServiceConfig cfg;
    cfg.threads = threads;
    RouteService service(faults, cfg);
    results.push_back(service.serve(queries, /*wantPaths=*/true));
  }
  expectSameBatch(results[0], results[1]);
}

TEST(ServiceTest, EventsPatchOnlyChaseAffectedEntriesAndStayValid) {
  const Mesh2D mesh = Mesh2D::square(24);
  Rng rng(41);
  const FaultSet faults = injectUniform(mesh, 40, rng);
  ServiceConfig cfg;
  cfg.threads = 2;
  RouteService service(faults, cfg);
  const auto queries = randomBatch(mesh, 200, 43);
  service.serve(queries);
  const auto before = service.counters();
  const std::size_t compiledBefore =
      service.snapshot()->compiledColumns();
  ASSERT_GT(compiledBefore, 0u);

  // One added fault: columns split into carried / patched / dropped, and
  // the patch work is entries, not whole columns.
  Point toggle{12, 12};
  while (service.snapshot()->faults().isFaulty(toggle)) toggle.x += 1;
  const std::uint64_t epoch = service.applyAddFault(toggle);
  EXPECT_EQ(epoch, 1u);
  const auto after = service.counters();
  EXPECT_EQ(after.columnsCompiled, before.columnsCompiled);
  EXPECT_EQ(after.columnsCarried + after.columnsPatched +
                after.columnsDropped -
                (before.columnsCarried + before.columnsPatched +
                 before.columnsDropped),
            compiledBefore);
  const std::uint64_t patchedEntries =
      after.entriesPatched - before.entriesPatched;
  const std::uint64_t patchedColumns =
      after.columnsPatched - before.columnsPatched;
  EXPECT_GT(patchedColumns, 0u);
  // The whole point: far fewer recomputed entries than a full recompile
  // of the patched columns would cost.
  EXPECT_LT(patchedEntries,
            patchedColumns * static_cast<std::uint64_t>(mesh.nodeCount()));

  // Served paths remain valid against the new epoch without recompiling.
  const BatchResult result = service.serve(queries, /*wantPaths=*/true);
  EXPECT_EQ(result.epoch, 1u);
  const auto snap = service.snapshot();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!result.delivered(i)) continue;
    EXPECT_TRUE(isValidPath(snap->faults(), queries[i].s, queries[i].d,
                            result.paths[i]));
  }
}

TEST(ServiceTest, RepairedDestinationGetsAFreshColumn) {
  const Mesh2D mesh = Mesh2D::square(12);
  FaultSet faults(mesh);
  const Point dead{6, 6};
  faults.add(dead);
  ServiceConfig cfg;
  cfg.threads = 1;
  RouteService service(faults, cfg);
  const std::vector<Query> toDead{{{1, 1}, dead}};
  BatchResult r = service.serve(toDead, true);
  EXPECT_EQ(r.status[0], ServeStatus::EndpointFaulty);

  service.applyRemoveFault(dead);
  r = service.serve(toDead, true);
  EXPECT_EQ(r.status[0], ServeStatus::Delivered);
  EXPECT_EQ(r.hops[0], manhattan(Point{1, 1}, dead));
  EXPECT_TRUE(isValidPath(service.snapshot()->faults(), {1, 1}, dead,
                          r.paths[0]));
}

TEST(ServiceTest, SnapshotConsistencyUnderConcurrentChurn) {
  // Reader threads serve batches while a writer applies add/remove
  // events. Every delivered path must be valid against the fault set of
  // the exact epoch it was served from — published epochs are recorded by
  // the writer and checked after the threads join.
  const Mesh2D mesh = Mesh2D::square(16);
  Rng rng(71);
  const FaultSet initial = injectUniform(mesh, 30, rng);
  ServiceConfig cfg;
  cfg.threads = 2;
  RouteService service(initial, cfg);

  std::map<std::uint64_t, FaultSet> published;
  published.emplace(0, service.snapshot()->faults());

  struct Observation {
    Query query;
    std::uint64_t epoch;
    ServeStatus status;
    std::vector<Point> path;
  };
  std::vector<std::vector<Observation>> observed(3);
  std::atomic<bool> readersDone{false};

  // The writer churns for as long as the readers serve, so batches land
  // on many different epochs. Epoch fault sets are recorded writer-side;
  // observations are validated after the join, when the record is
  // complete.
  std::thread writer([&] {
    Rng churnRng(73);
    while (!readersDone.load()) {
      const Point p{static_cast<Coord>(churnRng.below(16)),
                    static_cast<Coord>(churnRng.below(16))};
      const std::uint64_t epoch = churnRng.chance(0.4)
                                      ? service.applyRemoveFault(p)
                                      : service.applyAddFault(p);
      if (!published.contains(epoch)) {
        published.emplace(epoch, service.snapshot()->faults());
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    readers.emplace_back([&, t] {
      const auto queries = randomBatch(mesh, 60, 100 + t);
      for (int round = 0; round < 10; ++round) {
        const BatchResult result =
            service.serve(queries, /*wantPaths=*/true);
        for (std::size_t i = 0; i < queries.size(); ++i) {
          observed[t].push_back({queries[i], result.epoch,
                                 result.status[i], result.paths[i]});
        }
      }
    });
  }
  for (auto& reader : readers) reader.join();
  readersDone.store(true);
  writer.join();

  std::size_t validated = 0;
  for (const auto& perThread : observed) {
    for (const Observation& ob : perThread) {
      const auto it = published.find(ob.epoch);
      ASSERT_NE(it, published.end()) << "unpublished epoch " << ob.epoch;
      if (ob.status == ServeStatus::Delivered) {
        EXPECT_TRUE(
            isValidPath(it->second, ob.query.s, ob.query.d, ob.path))
            << "epoch " << ob.epoch;
        ++validated;
      }
    }
  }
  EXPECT_GT(validated, 0u);
  // Single-digit live snapshots at rest: readers drained, retired epochs
  // reclaimed.
  EXPECT_EQ(service.liveSnapshots(), 1u);
}

// ------------------------------------------- per-group exception scoping

using testutil::ensurePoisonRouterRegistered;
using testutil::PoisonScope;

TEST(ServiceTest, ThrowingWriterCannotPoisonReaders) {
  // Regression for the per-group exception contract: the writer's patch
  // jobs throw (router construction fails while armed), which must
  // surface ONLY on the writer's applyAddFault — concurrently serving
  // readers share the same pool and must neither throw nor stall. Under
  // the pre-TaskGroup global-barrier pool, the writer's exception could
  // be rethrown from a reader's wait() instead.
  ensurePoisonRouterRegistered();
  const Mesh2D mesh = Mesh2D::square(16);
  Rng rng(91);
  const FaultSet initial = injectUniform(mesh, 24, rng);
  ServiceConfig cfg;
  cfg.routerKey = "poison-when-armed";
  cfg.threads = 2;
  RouteService service(initial, cfg);

  // Compile the batch's columns while disarmed; armed readers then serve
  // pure table chases (no router construction on their path).
  const auto queries = randomBatch(mesh, 120, 93);
  const BatchResult reference = service.serve(queries, /*wantPaths=*/true);

  constexpr std::uint64_t kBatches = 10;  // 2 readers x 5 serves
  std::atomic<std::uint64_t> readerErrors{0};
  std::atomic<std::uint64_t> batchesServed{0};
  std::uint64_t writerFailures = 0;
  std::uint64_t writerAttempts = 0;
  std::vector<Point> toggled;
  {
    PoisonScope armed;
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
      readers.emplace_back([&] {
        for (int round = 0; round < 5; ++round) {
          try {
            const BatchResult result =
                service.serve(queries, /*wantPaths=*/true);
            // The failed events never publish, so every batch must be
            // served from epoch 0 with the reference results.
            if (result.epoch != 0 || result.size() != reference.size()) {
              readerErrors.fetch_add(1);
            }
            batchesServed.fetch_add(1);
          } catch (...) {
            readerErrors.fetch_add(1);
          }
        }
      });
    }
    // The writer throws for as long as the readers serve (capped by the
    // supply of fresh points): the poisoned waits overlap the reader
    // waits on the shared pool. The writer-side model runs ahead of the
    // never-published epoch 0 after each failed event, so avoid
    // re-toggling an already-added point — that would be a no-op instead
    // of a throwing patch attempt.
    Rng toggleRng(97);
    do {
      Point p = randomHealthy(service.snapshot()->faults(), toggleRng);
      while (std::find(toggled.begin(), toggled.end(), p) != toggled.end()) {
        p = randomHealthy(service.snapshot()->faults(), toggleRng);
      }
      toggled.push_back(p);
      ++writerAttempts;
      try {
        service.applyAddFault(p);
      } catch (const std::runtime_error&) {
        ++writerFailures;
      }
      std::this_thread::yield();
    } while (batchesServed.load() < kBatches && writerAttempts < 150);
    for (auto& r : readers) r.join();
  }

  // Every armed event needs patch routers (the toggled node's own entry
  // is always in the patch set), so every attempt must have failed …
  EXPECT_GE(writerAttempts, 1u);
  EXPECT_EQ(writerFailures, writerAttempts);
  EXPECT_EQ(service.epoch(), 0u);
  // … while the readers kept serving, error-free.
  EXPECT_EQ(readerErrors.load(), 0u);
  EXPECT_EQ(batchesServed.load(), kBatches);

  // Disarmed, the writer works again and serving reflects the new epoch
  // (built against the union of every failed event's footprint).
  Rng toggleRng(99);
  Point p = randomHealthy(service.snapshot()->faults(), toggleRng);
  while (std::find(toggled.begin(), toggled.end(), p) != toggled.end()) {
    p = randomHealthy(service.snapshot()->faults(), toggleRng);
  }
  EXPECT_EQ(service.applyAddFault(p), 1u);
  const BatchResult after = service.serve(queries, /*wantPaths=*/true);
  EXPECT_EQ(after.epoch, 1u);
  const auto snap = service.snapshot();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!after.delivered(i)) continue;
    EXPECT_TRUE(isValidPath(snap->faults(), queries[i].s, queries[i].d,
                            after.paths[i]));
  }
}

TEST(ServiceTest, ConcurrentIdenticalBatchesMatchSerialReference) {
  // Four reader threads serve the same batch concurrently on a shared
  // pool (racing the lazy column compiles, first install wins); each
  // result must equal the single-threaded reference bit for bit. This is
  // the overlapping-batches stress for the TaskGroup serve path (runs
  // under TSan in CI).
  const Mesh2D mesh = Mesh2D::square(20);
  Rng rng(81);
  const FaultSet faults = injectUniform(mesh, 48, rng);
  const auto queries = randomBatch(mesh, 150, 83);

  BatchResult reference;
  {
    ServiceConfig cfg;
    cfg.threads = 1;
    RouteService serial(faults, cfg);
    reference = serial.serve(queries, /*wantPaths=*/true);
  }

  ServiceConfig cfg;
  cfg.threads = 2;
  RouteService service(faults, cfg);
  std::vector<BatchResult> results(4);
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < results.size(); ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        results[t] = service.serve(queries, /*wantPaths=*/true);
      }
    });
  }
  for (auto& r : readers) r.join();
  for (const BatchResult& result : results) {
    expectSameBatch(result, reference);
  }
}

TEST(ServiceTest, RejectsTableKeysAndUnknownKeys) {
  const Mesh2D mesh = Mesh2D::square(6);
  const FaultSet faults(mesh);
  ServiceConfig unknown;
  unknown.routerKey = "nope";
  EXPECT_THROW(RouteService(faults, unknown), std::invalid_argument);
  ServiceConfig nested;
  nested.routerKey = "table:rb2";
  EXPECT_THROW(RouteService(faults, nested), std::invalid_argument);
}

}  // namespace
}  // namespace meshrt
