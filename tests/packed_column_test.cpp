// Differential tests for the 3-bit packed column encoding and the
// lockstep batch-chase engines (route/packed_column.h,
// route/batch_chase.h).
//
// The contracts under test:
//  - PackedRouteColumn compiles to and patches to exactly the dense
//    RouteColumn's entries, for every registry router and under
//    randomized fault churn + patch sequences (bit-identity by
//    construction through the shared firstHopByte helper);
//  - the per-column hop bound equals a from-scratch re-derivation after
//    every patch, and bounds every terminating chase — the invariant
//    that lets lockstep loops run `hopBound()` steps and call every
//    still-active lane Diverged;
//  - the scalar-lockstep and AVX2 batch engines both reproduce the
//    scalar chaseColumn byte for byte, including NoRoute and Diverged
//    lanes and sources equal to the destination;
//  - RouteService serves bit-identical batches under dense, packed and
//    packed-scalar encodings across live churn (the same-binary A/B the
//    ServiceConfig knob exists for).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "fault/injectors.h"
#include "route/batch_chase.h"
#include "route/packed_column.h"
#include "route/route_table.h"
#include "service/route_service.h"

namespace meshrt {
namespace {

std::vector<Query> randomBatch(const Mesh2D& mesh, std::size_t count,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(
        {{static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))},
         {static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))}});
  }
  return batch;
}

void expectColumnsBitIdentical(const RouteColumn& dense,
                               const PackedRouteColumn& packed,
                               const Mesh2D& mesh) {
  ASSERT_EQ(packed.dest(), dense.dest());
  ASSERT_EQ(packed.routedSources(), dense.routedSources());
  for (NodeId id = 0; id < mesh.nodeCount(); ++id) {
    ASSERT_EQ(packed.next(id), dense.next(id)) << "node " << id;
  }
}

/// Runs every source through the batch engine and through the scalar
/// chaseColumn serve contract (dense column, nodeCount bound), and
/// asserts byte-for-byte agreement. `simd` picks the engine.
void expectBatchMatchesScalarChase(const RouteColumn& dense,
                                   const PackedRouteColumn& packed,
                                   const Mesh2D& mesh, bool simd) {
  const auto n = static_cast<std::size_t>(mesh.nodeCount());
  std::vector<NodeId> sources(n);
  for (std::size_t i = 0; i < n; ++i) {
    sources[i] = static_cast<NodeId>(i);
  }
  std::vector<ServeStatus> status(n, ServeStatus::Delivered);
  std::vector<std::int32_t> hops(n, 0);
  if (simd) {
    chaseBatchAvx2(packed, sources.data(), n, packed.hopBound(),
                   status.data(), hops.data());
  } else {
    chaseBatchScalar(packed, sources.data(), n, packed.hopBound(),
                     status.data(), hops.data());
  }
  for (std::size_t i = 0; i < n; ++i) {
    const ServedRoute ref = chaseColumn(dense, mesh, mesh.point(sources[i]),
                                        n, /*wantPath=*/false);
    ASSERT_EQ(status[i], ref.status) << "source " << sources[i];
    if (ref.delivered()) {
      ASSERT_EQ(hops[i], static_cast<std::int32_t>(ref.hops))
          << "source " << sources[i];
    }
  }
}

// ----------------------------------------------------- compile identity

TEST(PackedColumnTest, CompileMatchesDenseForEveryRegistryKey) {
  const Mesh2D mesh = Mesh2D::square(12);
  for (std::uint64_t cfgSeed : {1u, 2u}) {
    Rng rng = Rng::forStream(3001, cfgSeed);
    const FaultSet faults = injectUniform(mesh, 18, rng);
    const FaultAnalysis fa(faults);
    const RouterContext ctx{&faults, &fa};
    Rng destRng(7 + cfgSeed);
    for (const auto& key : RouterRegistry::global().keys()) {
      if (key.starts_with("table:")) continue;
      SCOPED_TRACE(key + " cfg " + std::to_string(cfgSeed));
      const auto denseRouter = RouterRegistry::global().create(key, ctx);
      const auto packedRouter = RouterRegistry::global().create(key, ctx);
      for (int t = 0; t < 3; ++t) {
        const Point dest = randomHealthy(faults, destRng);
        const RouteColumn dense =
            compileRouteColumn(*denseRouter, faults, dest);
        const PackedRouteColumn packed =
            compilePackedRouteColumn(*packedRouter, faults, dest);
        expectColumnsBitIdentical(dense, packed, mesh);
        // The generic chase template reads both encodings identically.
        const auto maxSteps = static_cast<std::size_t>(mesh.nodeCount());
        for (NodeId id = 0; id < mesh.nodeCount(); ++id) {
          const ServedRoute a =
              chaseColumn(dense, mesh, mesh.point(id), maxSteps, true);
          const ServedRoute b =
              chaseColumn(packed, mesh, mesh.point(id), maxSteps, true);
          ASSERT_EQ(a.status, b.status) << "node " << id;
          ASSERT_EQ(a.hops, b.hops) << "node " << id;
          ASSERT_EQ(a.path, b.path) << "node " << id;
        }
      }
    }
  }
}

// ------------------------------------- patch identity + hop-bound oracle

TEST(PackedColumnTest, RandomizedPatchSequencesStayBitIdentical) {
  // Both encodings patch through firstHopByte; ANY common cell list must
  // keep them bit-identical, and the carried hop bound must equal a
  // from-scratch re-derivation (packing the patched dense column derives
  // it fresh from the same entries). The bound must also dominate every
  // terminating chase — the invariant the lockstep engines rely on.
  const Mesh2D mesh = Mesh2D::square(16);
  Rng rng(3301);
  FaultSet faults = injectUniform(mesh, 24, rng);
  const Point dest{13, 11};
  ASSERT_TRUE(faults.isHealthy(dest));

  RouteColumn dense = [&] {
    const FaultAnalysis fa(faults);
    const RouterContext ctx{&faults, &fa};
    const auto router = RouterRegistry::global().create("rb2", ctx);
    return compileRouteColumn(*router, faults, dest);
  }();
  PackedRouteColumn packed(dense, mesh);
  expectColumnsBitIdentical(dense, packed, mesh);

  Rng churn(3302);
  for (int round = 0; round < 8; ++round) {
    SCOPED_TRACE(round);
    // Toggle one node (never the destination), rebuild the analysis the
    // way the service's epoch build would.
    Point p = dest;
    while (p == dest) {
      p = {static_cast<Coord>(churn.below(16)),
           static_cast<Coord>(churn.below(16))};
    }
    if (faults.isFaulty(p)) {
      faults.remove(p);
    } else {
      faults.add(p);
    }
    const FaultAnalysis fa(faults);
    const RouterContext ctx{&faults, &fa};
    const auto denseRouter = RouterRegistry::global().create("rb2", ctx);
    const auto packedRouter = RouterRegistry::global().create("rb2", ctx);

    std::vector<NodeId> cells;
    cells.push_back(mesh.id(p));
    for (int c = 0; c < 40; ++c) {
      cells.push_back(static_cast<NodeId>(
          churn.below(static_cast<std::uint64_t>(mesh.nodeCount()))));
    }
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());

    dense = dense.patched(*denseRouter, faults, cells);
    packed = packed.patched(*packedRouter, faults, cells);
    expectColumnsBitIdentical(dense, packed, mesh);

    // Hop-bound oracle: re-deriving from scratch must agree.
    EXPECT_EQ(packed.hopBound(), PackedRouteColumn(dense, mesh).hopBound());

    // Every terminating chase fits under the bound (delivered chases
    // take `hops` advances, no-route chases path.size()-1).
    const auto maxSteps = static_cast<std::size_t>(mesh.nodeCount());
    for (NodeId id = 0; id < mesh.nodeCount(); ++id) {
      const ServedRoute chase =
          chaseColumn(packed, mesh, mesh.point(id), maxSteps, true);
      if (chase.status == ServeStatus::Diverged) continue;
      EXPECT_LE(chase.path.size() - 1,
                static_cast<std::size_t>(packed.hopBound()))
          << "node " << id;
    }
  }
}

// -------------------------------------------------- batch-chase engines

TEST(BatchChaseTest, LockstepMatchesScalarChaseForEveryRegistryKey) {
  const Mesh2D mesh = Mesh2D::square(20);
  Rng rng(3401);
  const FaultSet faults = injectUniform(mesh, 48, rng);
  const FaultAnalysis fa(faults);
  const RouterContext ctx{&faults, &fa};
  Rng destRng(3402);
  for (const auto& key : RouterRegistry::global().keys()) {
    if (key.starts_with("table:")) continue;
    SCOPED_TRACE(key);
    const auto router = RouterRegistry::global().create(key, ctx);
    for (int t = 0; t < 2; ++t) {
      const Point dest = randomHealthy(faults, destRng);
      const RouteColumn dense = compileRouteColumn(*router, faults, dest);
      const PackedRouteColumn packed(dense, mesh);
      expectBatchMatchesScalarChase(dense, packed, mesh, /*simd=*/false);
    }
  }
}

TEST(BatchChaseTest, SimdEngineMatchesScalarEngine) {
  if (!chaseBatchSimdAvailable()) {
    GTEST_SKIP() << "AVX2 engine not available on this host";
  }
  const Mesh2D mesh = Mesh2D::square(20);
  Rng rng(3501);
  const FaultSet faults = injectUniform(mesh, 48, rng);
  const FaultAnalysis fa(faults);
  const RouterContext ctx{&faults, &fa};
  const auto router = RouterRegistry::global().create("rb2", ctx);
  Rng destRng(3502);
  for (int t = 0; t < 4; ++t) {
    const Point dest = randomHealthy(faults, destRng);
    const RouteColumn dense = compileRouteColumn(*router, faults, dest);
    const PackedRouteColumn packed(dense, mesh);
    expectBatchMatchesScalarChase(dense, packed, mesh, /*simd=*/true);
  }
}

/// Router that pushes +X everywhere except the east edge, which pushes
/// back -X: every chase that does not start on the destination's row
/// (east-edge destination) livelocks between the last two columns —
/// dense Diverged coverage for the hop-bound and lockstep contracts.
class CycleRouter final : public Router {
 public:
  explicit CycleRouter(const Mesh2D& mesh) : mesh_(mesh) {}
  std::string_view name() const override { return "test-cycle"; }
  RouteResult route(Point s, Point d) override {
    (void)d;
    RouteResult out;
    out.delivered = true;
    const Point next = s.x + 1 < mesh_.width() ? Point{s.x + 1, s.y}
                                               : Point{s.x - 1, s.y};
    out.path = {s, next};
    return out;
  }

 private:
  const Mesh2D& mesh_;
};

TEST(BatchChaseTest, DivergingColumnRetiresByHopBound) {
  const Mesh2D mesh = Mesh2D::square(16);
  const FaultSet faults(mesh);
  CycleRouter router(mesh);
  const Point dest{15, 0};  // east edge: its row delivers, the rest cycle
  const RouteColumn dense = compileRouteColumn(router, faults, dest);
  const PackedRouteColumn packed(dense, mesh);
  // Longest terminating chase: (0, 0) takes width-1 hops east. Every
  // other row livelocks and must NOT stretch the bound — that is the
  // hoisted-livelock-guard claim.
  EXPECT_EQ(packed.hopBound(), 15u);
  expectBatchMatchesScalarChase(dense, packed, mesh, /*simd=*/false);
  if (chaseBatchSimdAvailable()) {
    expectBatchMatchesScalarChase(dense, packed, mesh, /*simd=*/true);
  }
}

// -------------------------------------------- service-level A/B identity

TEST(ServiceEncodingTest, EncodingsServeBitIdenticallyUnderChurn) {
  const Mesh2D mesh = Mesh2D::square(24);
  Rng rng(3601);
  const FaultSet faults = injectUniform(mesh, 50, rng);
  // Unfiltered batch: includes faulty endpoints (EndpointFaulty lanes)
  // and, occasionally, s == d — the inline specials of the lockstep
  // path.
  const auto batch = randomBatch(mesh, 200, 3602);

  struct Round {
    BatchResult flat;   // wantPaths=false: the lockstep fast path
    BatchResult paths;  // wantPaths=true: the scalar template path
  };
  auto run = [&](ColumnEncoding encoding) {
    ServiceConfig cfg;
    cfg.threads = 2;
    cfg.encoding = encoding;
    RouteService service(faults, cfg);
    std::vector<Round> rounds;
    Rng churn(3603);
    for (int round = 0; round < 6; ++round) {
      Round r;
      r.flat = service.serve(batch, /*wantPaths=*/false);
      r.paths = service.serve(batch, /*wantPaths=*/true);
      rounds.push_back(std::move(r));
      const Point p{static_cast<Coord>(churn.below(24)),
                    static_cast<Coord>(churn.below(24))};
      if (service.snapshot()->faults().isFaulty(p)) {
        service.applyRemoveFault(p);
      } else {
        service.applyAddFault(p);
      }
    }
    return rounds;
  };

  const auto dense = run(ColumnEncoding::Dense);
  for (ColumnEncoding other :
       {ColumnEncoding::Packed, ColumnEncoding::PackedScalar}) {
    SCOPED_TRACE(std::string(columnEncodingName(other)));
    const auto rounds = run(other);
    ASSERT_EQ(rounds.size(), dense.size());
    for (std::size_t r = 0; r < rounds.size(); ++r) {
      SCOPED_TRACE(r);
      ASSERT_EQ(rounds[r].flat.epoch, dense[r].flat.epoch);
      ASSERT_EQ(rounds[r].flat.status, dense[r].flat.status);
      ASSERT_EQ(rounds[r].flat.hops, dense[r].flat.hops);
      ASSERT_EQ(rounds[r].paths.status, dense[r].paths.status);
      ASSERT_EQ(rounds[r].paths.hops, dense[r].paths.hops);
      ASSERT_EQ(rounds[r].paths.paths, dense[r].paths.paths);
    }
  }
}

}  // namespace
}  // namespace meshrt
