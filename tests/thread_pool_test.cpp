// TaskGroup executor tests: per-batch waits on a shared worker pool.
//
// The contract under test (DESIGN.md section 8): group.wait() blocks only
// on that group's jobs (overlapping groups make independent progress even
// when the workers are saturated — the waiter helps run its own queue),
// exceptions are captured per group and never leak to another caller's
// wait, jobs may submit follow-on jobs into their own group, and waiting
// on an empty group returns immediately. These suites also run under
// ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/thread_pool.h"

namespace meshrt {
namespace {

/// Manually released gate the blocking jobs park on (no busy waiting, so
/// the tests behave on single-core machines too).
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void waitUntilOpen() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(TaskGroupTest, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.wait();  // nothing submitted: must not block or throw
  group.wait();  // and stays reusable
}

TEST(TaskGroupTest, RunsEveryJobBeforeWaitReturns) {
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    group.submit([&ran] { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(TaskGroupTest, OverlappingGroupsMakeIndependentProgress) {
  // Group A's jobs occupy EVERY worker until released; group B must still
  // complete its jobs and return from wait() — under a global-barrier
  // pool this deadlocks (B's wait needs A's jobs to finish first).
  ThreadPool pool(2);
  Gate gate;
  TaskGroup a(pool);
  std::atomic<int> parked{0};
  for (int i = 0; i < 2; ++i) {
    a.submit([&] {
      parked.fetch_add(1);
      gate.waitUntilOpen();
    });
  }

  TaskGroup b(pool);
  std::atomic<int> bRan{0};
  for (int i = 0; i < 8; ++i) {
    b.submit([&bRan] { bRan.fetch_add(1); });
  }
  b.wait();  // must not wait for A (the waiter runs B's queue itself)
  EXPECT_EQ(bRan.load(), 8);

  gate.open();
  a.wait();
  EXPECT_EQ(parked.load(), 2);
}

TEST(TaskGroupTest, ExceptionsStayInTheirGroup) {
  ThreadPool pool(2);
  TaskGroup bad(pool);
  TaskGroup good(pool);
  std::atomic<int> ran{0};
  bad.submit([] { throw std::runtime_error("bad group job"); });
  for (int i = 0; i < 8; ++i) {
    good.submit([&ran] { ran.fetch_add(1); });
  }
  good.wait();  // the other group's error must be invisible here
  EXPECT_EQ(ran.load(), 8);
  EXPECT_THROW(bad.wait(), std::runtime_error);
  // The error is consumed: both groups keep working afterwards.
  bad.submit([&ran] { ran.fetch_add(1); });
  bad.wait();
  EXPECT_EQ(ran.load(), 9);
}

TEST(TaskGroupTest, ExactlyOneExceptionDeliveredPerWait) {
  // "First" means first to finish (scheduling decides between concurrent
  // throwers); the contract is that ONE of the group's exceptions is
  // delivered and the rest are dropped, leaving the group clean.
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.submit([] { throw std::runtime_error("either"); });
  group.submit([] { throw std::logic_error("or"); });
  try {
    group.wait();
    FAIL() << "wait() should have rethrown";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what == "either" || what == "or") << what;
  }
  // The losing exception was dropped with the winner consumed: the next
  // wait is clean.
  std::atomic<int> ran{0};
  group.submit([&ran] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGroupTest, NestedJobsAreHelpedWhileWaiterSleeps) {
  // Regression: a nested job submitted AFTER the group's waiter went to
  // sleep must still be helped by that waiter. Here both workers end up
  // parked (one on group A's gate, one on B's own parent job), so B's
  // nested job can complete only if B's sleeping waiter wakes up and
  // runs it — the waker being the nested job's own enqueue.
  ThreadPool pool(2);
  Gate gate;
  TaskGroup a(pool);
  a.submit([&gate] { gate.waitUntilOpen(); });

  TaskGroup b(pool);
  std::atomic<bool> parentStarted{false};
  std::atomic<int> nestedRan{0};
  b.submit([&] {
    parentStarted.store(true);
    // Give the caller a moment to reach its cvDone sleep before the
    // nested job exists, then park this worker too: only the waiter can
    // run the nested job, and only the nested job opens the gate.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.submit([&] {
      nestedRan.fetch_add(1);
      gate.open();
    });
    gate.waitUntilOpen();
  });
  while (!parentStarted.load()) std::this_thread::yield();
  b.wait();
  EXPECT_EQ(nestedRan.load(), 1);
  a.wait();
}

TEST(TaskGroupTest, JobsMaySubmitIntoTheirOwnGroup) {
  // Nested fan-out: each root job spawns children, children spawn
  // grandchildren; one wait() covers the whole tree.
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int root = 0; root < 4; ++root) {
    group.submit([&] {
      ran.fetch_add(1);
      for (int child = 0; child < 3; ++child) {
        group.submit([&] {
          ran.fetch_add(1);
          group.submit([&] { ran.fetch_add(1); });
        });
      }
    });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 4 + 4 * 3 + 4 * 3);
}

TEST(TaskGroupTest, DestructorDrainsWithoutRethrowing) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
      group.submit([&ran, i] {
        if (i == 3) throw std::runtime_error("dropped on the floor");
        ran.fetch_add(1);
      });
    }
    // No wait(): the destructor must drain every job (their captures die
    // with this scope) and swallow the error.
  }
  EXPECT_EQ(ran.load(), 15);
}

TEST(TaskGroupTest, ConcurrentWaitersFromManyThreads) {
  // Eight caller threads, each with a private group on one shared pool —
  // the route-service shape. Every caller must see exactly its own
  // results. (Run under TSan in CI.)
  ThreadPool pool(2);
  std::vector<std::thread> callers;
  std::vector<int> sums(8, 0);
  for (int t = 0; t < 8; ++t) {
    callers.emplace_back([&pool, &sums, t] {
      for (int round = 0; round < 5; ++round) {
        TaskGroup group(pool);
        std::atomic<int> sum{0};
        for (int i = 0; i < 16; ++i) {
          group.submit([&sum, i] { sum.fetch_add(i); });
        }
        group.wait();
        sums[static_cast<std::size_t>(t)] += sum.load();
      }
    });
  }
  for (auto& c : callers) c.join();
  for (int s : sums) EXPECT_EQ(s, 5 * 120);
}

TEST(TaskGroupTest, ParallelForCallsInterleaveAcrossThreads) {
  // parallelFor rides a private group per call: concurrent calls on one
  // pool must produce independent, correct results.
  ThreadPool pool(2);
  std::vector<std::thread> callers;
  std::vector<std::vector<std::size_t>> out(4);
  for (std::size_t t = 0; t < out.size(); ++t) {
    out[t].resize(200, 0);
    callers.emplace_back([&pool, &out, t] {
      parallelFor(pool, out[t].size(),
                  [&out, t](std::size_t i) { out[t][i] = i + t; });
    });
  }
  for (auto& c : callers) c.join();
  for (std::size_t t = 0; t < out.size(); ++t) {
    for (std::size_t i = 0; i < out[t].size(); ++i) {
      EXPECT_EQ(out[t][i], i + t);
    }
  }
}

}  // namespace
}  // namespace meshrt
