// Differential tests for the incremental fault-region maintenance engine:
// random add/remove sequences must leave the IncrementalLabeler bit-
// identical to a full computeLabels + extractMccs, and a synced
// QuadrantInfo identical to one rebuilt from scratch (DESIGN.md section 6).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "fault/analysis.h"
#include "fault/incremental.h"
#include "info/knowledge.h"
#include "route/bfs.h"
#include "route/registry.h"
#include "route/validate.h"
#include "test_util.h"

namespace meshrt {
namespace {

/// Canonical component form: sorted cell list keyed by its smallest cell,
/// so MCC sets compare independently of id assignment order. Works over a
/// std::vector<Mcc> (bulk extraction) and MccSlots (the labeler).
template <typename Mccs>
std::map<Point, std::vector<Point>> canonicalComponents(const Mccs& mccs) {
  std::map<Point, std::vector<Point>> out;
  for (const Mcc& mcc : mccs) {
    if (mcc.id < 0) continue;
    std::vector<Point> cells = mcc.shape.cells();
    std::sort(cells.begin(), cells.end());
    out.emplace(cells.front(), std::move(cells));
  }
  return out;
}

/// Full per-op equivalence check of labeler state against the bulk
/// pipeline run on the mirrored fault set.
void expectMatchesBulk(const Mesh2D& mesh, const IncrementalLabeler& labeler,
                       const FaultSet& faults) {
  const LabelGrid bulk = computeLabels(mesh, faults);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      ASSERT_EQ(labeler.labels().raw({x, y}), bulk.raw({x, y}))
          << "label mismatch at " << x << "," << y;
    }
  }
  EXPECT_EQ(labeler.unsafeCount(), countUnsafe(mesh, bulk));
  EXPECT_EQ(labeler.faultCount(), faults.count());

  const MccExtraction extraction = extractMccs(mesh, bulk);
  const auto incremental = canonicalComponents(labeler.mccs());
  const auto scratch = canonicalComponents(extraction.mccs);
  ASSERT_EQ(incremental.size(), scratch.size());
  ASSERT_EQ(labeler.mccCount(), extraction.mccs.size());
  for (const auto& [key, cells] : scratch) {
    const auto it = incremental.find(key);
    ASSERT_NE(it, incremental.end()) << "missing component at " << key;
    EXPECT_EQ(it->second, cells);
  }

  // Full Mcc records must match too (shape, corners, counts), matched by
  // canonical key.
  std::map<Point, const Mcc*> scratchById;
  for (const Mcc& mcc : extraction.mccs) {
    std::vector<Point> cells = mcc.shape.cells();
    scratchById.emplace(*std::min_element(cells.begin(), cells.end()), &mcc);
  }
  for (const Mcc& mcc : labeler.mccs()) {
    if (mcc.id < 0) continue;
    std::vector<Point> cells = mcc.shape.cells();
    const Point key = *std::min_element(cells.begin(), cells.end());
    const Mcc& ref = *scratchById.at(key);
    EXPECT_EQ(mcc.shape, ref.shape);
    EXPECT_EQ(mcc.shapeTransposed, ref.shapeTransposed);
    EXPECT_EQ(mcc.cornerC, ref.cornerC);
    EXPECT_EQ(mcc.cornerCPrime, ref.cornerCPrime);
    EXPECT_EQ(mcc.cornerNW, ref.cornerNW);
    EXPECT_EQ(mcc.cornerSE, ref.cornerSE);
    EXPECT_EQ(mcc.cellCount, ref.cellCount);
    EXPECT_EQ(mcc.faultyCells, ref.faultyCells);
  }

  // The id map must agree with the bulk extraction up to id renaming, and
  // every live id must point at its own slot.
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      const Point p{x, y};
      const int id = labeler.mccIndex()[p];
      if (bulk.isSafe(p)) {
        EXPECT_EQ(id, -1);
      } else {
        ASSERT_GE(id, 0);
        const Mcc& mcc = labeler.mccs()[static_cast<std::size_t>(id)];
        ASSERT_EQ(mcc.id, id);
        EXPECT_TRUE(mcc.shape.contains(p));
      }
    }
  }
}

Point randomPoint(const Mesh2D& mesh, Rng& rng) {
  return {static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))};
}

class IncrementalEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEquivalence, RandomAddRemoveSequencesMatchFullRelabel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const Mesh2D mesh = Mesh2D::square(20);
  FaultSet mirror(mesh);
  IncrementalLabeler labeler(mesh);

  for (int op = 0; op < 150; ++op) {
    const Point p = randomPoint(mesh, rng);
    // Bias toward adds so fault density builds up and removals regularly
    // split components.
    if (rng.chance(0.6)) {
      const LabelDelta delta = labeler.addFault(p);
      EXPECT_EQ(delta.empty(), mirror.isFaulty(p));
      mirror.add(p);
    } else {
      const LabelDelta delta = labeler.removeFault(p);
      EXPECT_EQ(delta.empty(), mirror.isHealthy(p));
      mirror.remove(p);
    }
    expectMatchesBulk(mesh, labeler, mirror);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Range(0, 8));

TEST(IncrementalLabelerTest, BulkConstructionMatchesStaticPipeline) {
  Rng rng(2024);
  const Mesh2D mesh = Mesh2D::square(24);
  const FaultSet faults = injectUniform(mesh, 90, rng);
  const IncrementalLabeler labeler(mesh, faults);
  expectMatchesBulk(mesh, labeler, faults);
  EXPECT_EQ(labeler.version(), 0u);
}

TEST(IncrementalLabelerTest, NoOpTogglesKeepVersionAndLog) {
  const Mesh2D mesh = Mesh2D::square(8);
  IncrementalLabeler labeler(mesh);
  EXPECT_TRUE(labeler.removeFault({3, 3}).empty());
  EXPECT_EQ(labeler.version(), 0u);

  const LabelDelta added = labeler.addFault({3, 3});
  EXPECT_FALSE(added.empty());
  EXPECT_TRUE(added.added);
  EXPECT_EQ(added.version, 1u);
  ASSERT_EQ(added.addedMccs.size(), 1u);
  EXPECT_TRUE(added.removedMccs.empty());

  EXPECT_TRUE(labeler.addFault({3, 3}).empty());
  EXPECT_EQ(labeler.version(), 1u);
  EXPECT_EQ(labeler.deltaLog().size(), 1u);

  const LabelDelta removed = labeler.removeFault({3, 3});
  EXPECT_FALSE(removed.empty());
  EXPECT_EQ(removed.version, 2u);
  EXPECT_EQ(removed.removedMccs, added.addedMccs);
  EXPECT_TRUE(removed.addedMccs.empty());
  EXPECT_EQ(labeler.mccCount(), 0u);
  EXPECT_EQ(labeler.unsafeCount(), 0u);
}

TEST(IncrementalLabelerTest, DeltaLogIsTrimmed) {
  const Mesh2D mesh = Mesh2D::square(40);
  IncrementalLabeler labeler(mesh);
  for (Coord x = 0; x < 40; ++x) {
    labeler.addFault({x, 10});
    labeler.addFault({x, 20});
  }
  EXPECT_EQ(labeler.version(), 80u);
  EXPECT_EQ(labeler.deltaLog().size(),
            IncrementalLabeler::kDeltaLogCapacity);
  EXPECT_EQ(labeler.deltaLog().back().version, 80u);
}

TEST(IncrementalLabelerTest, MergeAndSplitAroundAntiDiagonal) {
  // Two anti-diagonal faults close a 2x2 unsafe square (one component);
  // removing one fault splits the labels back to a single faulty node.
  const Mesh2D mesh = Mesh2D::square(10);
  IncrementalLabeler labeler(mesh);
  labeler.addFault({5, 6});
  EXPECT_EQ(labeler.mccCount(), 1u);
  const LabelDelta merged = labeler.addFault({6, 5});
  EXPECT_EQ(labeler.mccCount(), 1u);
  EXPECT_EQ(labeler.unsafeCount(), 4u);
  EXPECT_EQ(merged.removedMccs.size(), 1u);  // the single-cell component
  EXPECT_TRUE(labeler.labels().isUseless({5, 5}));
  EXPECT_TRUE(labeler.labels().isCantReach({6, 6}));

  const LabelDelta split = labeler.removeFault({5, 6});
  EXPECT_EQ(labeler.mccCount(), 1u);
  EXPECT_EQ(labeler.unsafeCount(), 1u);
  EXPECT_EQ(split.removedMccs.size(), 1u);
  EXPECT_EQ(split.addedMccs.size(), 1u);
  EXPECT_TRUE(labeler.labels().isSafe({5, 5}));
  EXPECT_TRUE(labeler.labels().isSafe({6, 6}));
}

// A fault repair in the middle of a wall must split one component into two
// (the case full relabeling gets for free and the patcher must localize).
TEST(IncrementalLabelerTest, RepairSplitsWallComponent) {
  const Mesh2D mesh = Mesh2D::square(12);
  IncrementalLabeler labeler(mesh);
  for (Coord x = 2; x <= 8; ++x) labeler.addFault({x, 5});
  EXPECT_EQ(labeler.mccCount(), 1u);
  const LabelDelta delta = labeler.removeFault({5, 5});
  EXPECT_EQ(labeler.mccCount(), 2u);
  EXPECT_EQ(delta.removedMccs.size(), 1u);
  EXPECT_EQ(delta.addedMccs.size(), 2u);

  FaultSet mirror(mesh);
  for (Coord x = 2; x <= 8; ++x) {
    if (x != 5) mirror.add({x, 5});
  }
  expectMatchesBulk(mesh, labeler, mirror);
}

// --- knowledge refresh ----------------------------------------------------

void expectSameKnowledge(const QuadrantAnalysis& qa, const QuadrantInfo& a,
                         const QuadrantInfo& b) {
  const Mesh2D& mesh = qa.localMesh();
  EXPECT_EQ(a.involvedCount(), b.involvedCount());
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      const Point p{x, y};
      const auto ai = a.typeIKnown(p);
      const auto bi = b.typeIKnown(p);
      ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()))
          << "type-I knowledge differs at " << p.str();
      const auto aii = a.typeIIKnown(p);
      const auto bii = b.typeIIKnown(p);
      ASSERT_TRUE(
          std::equal(aii.begin(), aii.end(), bii.begin(), bii.end()))
          << "type-II knowledge differs at " << p.str();
      EXPECT_EQ(a.wasInvolved(p), b.wasInvolved(p)) << p.str();
    }
  }
  for (const Mcc& mcc : qa.mccs()) {
    if (mcc.id < 0) continue;
    EXPECT_EQ(a.involvedForMcc(mcc.id), b.involvedForMcc(mcc.id))
        << "per-MCC involvement differs for id " << mcc.id;
  }
  EXPECT_EQ(a.perMccInvolvedPercent(), b.perMccInvolvedPercent());
}

class KnowledgeRefresh : public ::testing::TestWithParam<int> {};

TEST_P(KnowledgeRefresh, SyncedKnowledgeMatchesRebuild) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1201 + 5);
  const Mesh2D mesh = Mesh2D::square(16);
  DynamicFaultModel model(mesh);
  const QuadrantAnalysis& qa = model.analysis().quadrant(Quadrant::NE);

  std::vector<QuadrantInfo> infos;
  infos.emplace_back(qa, InfoModel::B1);
  infos.emplace_back(qa, InfoModel::B2);
  infos.emplace_back(qa, InfoModel::B3);

  for (int op = 0; op < 40; ++op) {
    const Point p = randomPoint(mesh, rng);
    if (rng.chance(0.65)) {
      model.addFault(p);
    } else {
      model.removeFault(p);
    }
    for (QuadrantInfo& info : infos) {
      info.sync();
      EXPECT_EQ(info.version(), qa.version());
      const QuadrantInfo scratch(qa, info.model());
      expectSameKnowledge(qa, info, scratch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnowledgeRefresh, ::testing::Range(0, 6));

// Regression: a sync that replays SEVERAL deltas sees the final analysis
// state on every replay, so an id created by a later logged delta can
// surface (via the index lookup) while an earlier delta is applied —
// without a drop before every build it was built twice, doubling its
// involvement counts. RB1/RB3 hit this shape whenever multiple fault
// events land between route() calls.
class KnowledgeBatchedRefresh : public ::testing::TestWithParam<int> {};

TEST_P(KnowledgeBatchedRefresh, SyncAfterSeveralEventsMatchesRebuild) {
  const int batch = 2 + GetParam() % 4;  // sync every 2..5 events
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 947 + 3);
  const Mesh2D mesh = Mesh2D::square(16);
  DynamicFaultModel model(mesh);
  const QuadrantAnalysis& qa = model.analysis().quadrant(Quadrant::NE);

  std::vector<QuadrantInfo> infos;
  infos.emplace_back(qa, InfoModel::B1);
  infos.emplace_back(qa, InfoModel::B2);
  infos.emplace_back(qa, InfoModel::B3);

  for (int op = 0; op < 48; ++op) {
    const Point p = randomPoint(mesh, rng);
    if (rng.chance(0.65)) {
      model.addFault(p);
    } else {
      model.removeFault(p);
    }
    if (op % batch != batch - 1) continue;
    for (QuadrantInfo& info : infos) {
      info.sync();
      const QuadrantInfo scratch(qa, info.model());
      expectSameKnowledge(qa, info, scratch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnowledgeBatchedRefresh,
                         ::testing::Range(0, 8));

TEST(KnowledgeRefreshTest, SyncRebuildsWhenLogIsTooOld) {
  Rng rng(77);
  const Mesh2D mesh = Mesh2D::square(16);
  DynamicFaultModel model(mesh);
  const QuadrantAnalysis& qa = model.analysis().quadrant(Quadrant::NE);
  QuadrantInfo info(qa, InfoModel::B2);

  // More effective events than the delta log holds, without syncing.
  std::size_t events = 0;
  while (events < IncrementalLabeler::kDeltaLogCapacity + 10) {
    if (model.addFault(randomPoint(mesh, rng))) ++events;
  }
  info.sync();
  EXPECT_EQ(info.version(), qa.version());
  const QuadrantInfo scratch(qa, InfoModel::B2);
  expectSameKnowledge(qa, info, scratch);
}

// --- routers over a patched analysis --------------------------------------

class DynamicRouting : public ::testing::TestWithParam<int> {};

TEST_P(DynamicRouting, Rb2StaysShortestAndRb1Rb3StayValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 1);
  const Mesh2D mesh = Mesh2D::square(20);
  DynamicFaultModel model(mesh);
  const RouterContext ctx{&model.faults(), &model.analysis()};
  // Built once and reused across fault events: the routers must follow the
  // patched analysis and the synced knowledge, not a frozen snapshot.
  const auto routers = makeRouters({"rb1", "rb2", "rb3"}, ctx);

  for (int round = 0; round < 12; ++round) {
    for (int e = 0; e < 6; ++e) {
      const Point p = randomPoint(mesh, rng);
      if (rng.chance(0.7)) {
        model.addFault(p);
      } else {
        model.removeFault(p);
      }
    }
    for (int trial = 0; trial < 10; ++trial) {
      const Point s = randomPoint(mesh, rng);
      const Point d = randomPoint(mesh, rng);
      if (s == d) continue;
      const auto& qa = model.analysis().forPair(s, d);
      const Point sL = qa.frame().toLocal(s);
      const Point dL = qa.frame().toLocal(d);
      if (!qa.labels().isSafe(sL) || !qa.labels().isSafe(dL)) continue;
      const auto dist = safeDistances(qa.localMesh(), qa.labels(), sL);
      if (dist[dL] == kUnreachable) continue;

      for (const auto& router : routers) {
        const RouteResult res = router->route(s, d);
        if (router->name() == "RB2") {
          // Theorem 1 must keep holding on the incrementally patched
          // analysis.
          ASSERT_TRUE(res.delivered)
              << "RB2 failed " << s.str() << "->" << d.str() << " round "
              << round;
          EXPECT_EQ(res.hops(), dist[dL]);
        }
        if (res.delivered) {
          EXPECT_TRUE(isValidPath(model.faults(), s, d, res.path))
              << router->name() << " " << s.str() << "->" << d.str();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicRouting, ::testing::Range(0, 4));

}  // namespace
}  // namespace meshrt
