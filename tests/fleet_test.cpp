// Tests for the sharded route-service fleet (src/service/fleet.h).
//
// The key contracts:
//  - intra-shard queries match the single full-mesh RouteService
//    bit-for-bit on status/hops whenever the owning shard is
//    border-clear (always, in the interior-fault regime) and the
//    router's labels are local, and always produce globally valid
//    paths;
//  - cross-shard queries deliver stitched paths that are valid in the
//    global fault set, hop-accounted exactly (hops == path length - 1),
//    and segmented so consecutive segments join at a healthy border
//    crossing;
//  - the boundary waypoint graph holds its invariants: every waypoint
//    healthy on both sides, adjacency symmetric, shard paths adjacent
//    and blockable;
//  - admission control degrades (stale flag) or sheds (shed flag)
//    queries touching an overloaded shard while other shards keep
//    serving, and recovers after the writer drains;
//  - fleet serving is bitwise deterministic across thread counts.
//
// The representative-key differentials here stay under the tier-1 time
// budget; the full registry-key x encoding matrix and the multi-epoch
// churn stress live in tests/slow/ (ctest label `slow`).
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "fault/injectors.h"
#include "fleet_test_util.h"
#include "route/registry.h"
#include "route/validate.h"
#include "service/fleet.h"

namespace meshrt {
namespace {

using fleettest::expectFleetMatchesSingle;
using fleettest::fleetConfig;
using fleettest::injectInterior;
using fleettest::pooledBatch;
using fleettest::randomBatch;
using fleettest::singleConfig;

// ------------------------------------------------- differential oracle

TEST(FleetDifferential, InteriorFaultsMatchSingleServiceRepresentativeKeys) {
  const Mesh2D mesh = Mesh2D::square(32);
  const ShardLayout probe(mesh, 2, 2);
  Rng rng(101);
  const FaultSet faults = injectInterior(probe, 40, /*margin=*/3, rng);
  const auto batch = pooledBatch(mesh, 100, 10, 103);
  // One representative per label family: minimal-progress, the paper's
  // rb2, knowledge-driven rb3, oracle, and the non-local safety key
  // (valid-path assertions only). The full registry matrix runs in the
  // slow suite.
  for (const std::string key :
       {"ecube", "rb2", "rb3-full", "optimal", "safety"}) {
    SCOPED_TRACE(key);
    ServiceFleet fleet(faults, fleetConfig(key, 2));
    RouteService single(faults, singleConfig(key));
    expectFleetMatchesSingle(fleet, single, faults, batch,
                             /*allCertified=*/true);
  }
}

TEST(FleetDifferential, UnrestrictedFaultsCertifiedShardsBitForBit) {
  const Mesh2D mesh = Mesh2D::square(32);
  Rng rng(211);
  const FaultSet faults = injectUniform(mesh, 100, rng);  // ~10%
  const auto batch = pooledBatch(mesh, 120, 12, 223);
  ServiceFleet fleet(faults, fleetConfig("rb2", 2));
  RouteService single(faults, singleConfig("rb2"));
  expectFleetMatchesSingle(fleet, single, faults, batch,
                           /*allCertified=*/false);
}

TEST(FleetDifferential, EncodingsProduceIdenticalFleetResults) {
  const Mesh2D mesh = Mesh2D::square(32);
  Rng rng(311);
  const FaultSet faults = injectUniform(mesh, 60, rng);
  const auto batch = pooledBatch(mesh, 120, 12, 313);
  std::vector<FleetBatchResult> results;
  for (const ColumnEncoding enc :
       {ColumnEncoding::Dense, ColumnEncoding::Packed,
        ColumnEncoding::PackedScalar}) {
    FleetConfig cfg = fleetConfig("rb2", 2);
    cfg.service.encoding = enc;
    ServiceFleet fleet(faults, cfg);
    results.push_back(fleet.serve(batch, /*wantPaths=*/true));
  }
  for (std::size_t v = 1; v < results.size(); ++v) {
    SCOPED_TRACE(v);
    ASSERT_EQ(results[v].status, results[0].status);
    EXPECT_EQ(results[v].hops, results[0].hops);
    EXPECT_EQ(results[v].paths, results[0].paths);
    EXPECT_EQ(results[v].shardEpochs, results[0].shardEpochs);
  }
}

TEST(FleetDifferential, SingleShardFleetIsBitForBitForAllQueries) {
  const Mesh2D mesh = Mesh2D::square(32);
  Rng rng(401);
  const FaultSet faults = injectUniform(mesh, 80, rng);
  const auto batch = pooledBatch(mesh, 150, 12, 403);
  ServiceFleet fleet(faults, fleetConfig("rb2", 1));
  RouteService single(faults, singleConfig("rb2"));
  const FleetBatchResult fr = fleet.serve(batch, /*wantPaths=*/true);
  const BatchResult sr = single.serve(batch, /*wantPaths=*/true);
  ASSERT_EQ(fr.status, sr.status);
  EXPECT_EQ(fr.hops, sr.hops);
  EXPECT_EQ(fr.paths, sr.paths);
}

TEST(FleetDifferential, DeterministicAcrossThreadCounts) {
  const Mesh2D mesh = Mesh2D::square(32);
  Rng rng(501);
  const FaultSet faults = injectUniform(mesh, 80, rng);
  const auto batch = pooledBatch(mesh, 150, 12, 503);
  std::vector<FleetBatchResult> results;
  for (const std::size_t threads : {1u, 4u}) {
    FleetConfig cfg = fleetConfig("rb2", 2);
    cfg.service.threads = threads;
    ServiceFleet fleet(faults, cfg);
    results.push_back(fleet.serve(batch, /*wantPaths=*/true));
  }
  ASSERT_EQ(results[0].status, results[1].status);
  EXPECT_EQ(results[0].hops, results[1].hops);
  EXPECT_EQ(results[0].paths, results[1].paths);
}

// ------------------------------------------------- waypoint properties

TEST(FleetWaypointProperty, GraphInvariantsHoldUnderRandomFaults) {
  const Mesh2D mesh = Mesh2D::square(48);
  const ShardLayout layout(mesh, 3, 2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(seed);
    Rng rng(seed * 131);
    const FaultSet faults = injectUniform(mesh, 250, rng);
    const BoundaryWaypointGraph graph(
        layout, [&](Point p) { return faults.isHealthy(p); });
    for (std::size_t i = 0; i < graph.size(); ++i) {
      const auto& w = graph.waypoint(i);
      EXPECT_TRUE(faults.isHealthy(w.a));
      EXPECT_TRUE(faults.isHealthy(w.b));
      EXPECT_EQ(manhattan(w.a, w.b), 1);
      EXPECT_EQ(layout.owner(w.a), w.shardA);
      EXPECT_EQ(layout.owner(w.b), w.shardB);
      EXPECT_LT(w.shardA, w.shardB);
    }
    for (std::size_t a = 0; a < layout.shardCount(); ++a) {
      for (std::size_t b = 0; b < layout.shardCount(); ++b) {
        EXPECT_EQ(graph.adjacent(a, b), graph.adjacent(b, a));
        EXPECT_EQ(graph.border(a, b), graph.border(b, a));
        const auto& neigh = layout.neighbors(a);
        const bool gridAdjacent =
            std::find(neigh.begin(), neigh.end(), b) != neigh.end();
        if (!gridAdjacent) {
          EXPECT_TRUE(graph.border(a, b).empty());
        }
      }
    }
    // Shard paths step only across adjacent borders, and honor blocks.
    const std::vector<std::size_t> plan = graph.shardPath(0, 8);
    ASSERT_FALSE(plan.empty());
    EXPECT_EQ(plan.front(), 0u);
    EXPECT_EQ(plan.back(), 8u);
    for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
      EXPECT_TRUE(graph.adjacent(plan[i], plan[i + 1]));
    }
    EXPECT_EQ(graph.shardPath(4, 4), std::vector<std::size_t>{4});
    const std::vector<std::pair<std::size_t, std::size_t>> blocked{
        {0, 1}, {0, 3}};
    EXPECT_TRUE(graph.shardPath(0, 8, &blocked).empty());
  }
}

TEST(FleetWaypointProperty, StitchSegmentsJoinAtHealthyCrossings) {
  const Mesh2D mesh = Mesh2D::square(40);
  Rng rng(601);
  const FaultSet faults = injectUniform(mesh, 120, rng);
  ServiceFleet fleet(faults, fleetConfig("rb2", 2));
  const ShardLayout& layout = fleet.layout();
  const auto batch = pooledBatch(mesh, 160, 12, 607);
  const FleetBatchResult r = fleet.serve(batch, /*wantPaths=*/true);
  std::size_t stitchedSeen = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!r.delivered(i)) continue;
    const auto& segs = r.segments[i];
    const auto& path = r.paths[i];
    ASSERT_FALSE(segs.empty());
    EXPECT_EQ(segs.front().begin, 0u);
    if (segs.size() < 2) continue;
    ++stitchedSeen;
    for (std::size_t j = 1; j < segs.size(); ++j) {
      ASSERT_GT(segs[j].begin, segs[j - 1].begin);
      ASSERT_LT(segs[j].begin, path.size());
      // Junction: the crossing's two cells are 4-adjacent, healthy, and
      // owned by the two shards the segments ran in.
      const Point exit = path[segs[j].begin - 1];
      const Point entry = path[segs[j].begin];
      EXPECT_EQ(manhattan(exit, entry), 1);
      EXPECT_TRUE(faults.isHealthy(exit));
      EXPECT_TRUE(faults.isHealthy(entry));
      EXPECT_EQ(layout.owner(exit), segs[j - 1].shard);
      EXPECT_EQ(layout.owner(entry), segs[j].shard);
    }
    // Every segment stays inside its serving shard's local rectangle.
    for (std::size_t j = 0; j < segs.size(); ++j) {
      const std::size_t end =
          j + 1 < segs.size() ? segs[j + 1].begin : path.size();
      for (std::size_t p = segs[j].begin; p < end; ++p) {
        EXPECT_TRUE(layout.local(segs[j].shard).contains(path[p]));
      }
    }
  }
  EXPECT_GT(stitchedSeen, 0u);
}

// ------------------------------------------------- admission control

/// Mirrors the Gate pattern from thread_pool_test: appliers park on
/// waitUntilOpen until the test opens the gate.
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void waitUntilOpen() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// A fleet whose shard-0 applier is parked on a gate with a backlog
/// deeper than maxWriterQueue, plus per-shard probe queries.
struct BackpressureRig {
  explicit BackpressureRig(OverloadPolicy policy)
      : mesh(Mesh2D::square(32)) {
    FleetConfig cfg = fleetConfig("rb2", 2);
    cfg.halo = 1;
    cfg.maxWriterQueue = 2;
    cfg.overload = policy;
    cfg.applyHook = [this](std::size_t shard) {
      if (shard == 0) gate.waitUntilOpen();
    };
    fleet = std::make_unique<ServiceFleet>(FaultSet(mesh), cfg);
    // Shard 0 owns [0,15]^2; cells near (4,4) are covered by shard 0
    // only, so the storm lands on exactly one writer queue.
    for (Coord x = 2; x < 8; ++x) fleet->submitAddFault({x, 4});
  }
  ~BackpressureRig() {
    gate.open();
    fleet->drainWriters();
  }

  Mesh2D mesh;
  Gate gate;
  std::unique_ptr<ServiceFleet> fleet;
  // Probes: intra shard 0, intra shard 3, cross 0<->3.
  const std::vector<Query> probes{{{2, 2}, {12, 12}},
                                  {{20, 20}, {30, 28}},
                                  {{2, 2}, {30, 28}}};
};

TEST(FleetBackpressure, DegradeServesStaleFlaggedWhileOthersClean) {
  BackpressureRig rig(OverloadPolicy::Degrade);
  ASSERT_TRUE(rig.fleet->overloaded(0));
  ASSERT_FALSE(rig.fleet->overloaded(3));
  const FleetBatchResult r = rig.fleet->serve(rig.probes, true);
  // Shard-0 query: served (stale epoch 0) and flagged.
  EXPECT_EQ(r.status[0], ServeStatus::Delivered);
  EXPECT_EQ(r.flags[0], kFleetFlagStale);
  EXPECT_EQ(r.shardEpochs[0], 0u);
  // Shard-3 query: clean.
  EXPECT_EQ(r.status[1], ServeStatus::Delivered);
  EXPECT_EQ(r.flags[1], 0u);
  // Cross query touching shard 0: served, flagged.
  EXPECT_EQ(r.status[2], ServeStatus::Delivered);
  EXPECT_EQ(r.flags[2], kFleetFlagStale);
  EXPECT_GE(rig.fleet->counters().degradedQueries, 2u);
}

TEST(FleetBackpressure, ShedRefusesQueriesTouchingOverloadedShard) {
  BackpressureRig rig(OverloadPolicy::Shed);
  ASSERT_TRUE(rig.fleet->overloaded(0));
  const FleetBatchResult r = rig.fleet->serve(rig.probes, true);
  EXPECT_EQ(r.status[0], ServeStatus::NoRoute);
  EXPECT_EQ(r.flags[0], kFleetFlagShed);
  EXPECT_EQ(r.status[1], ServeStatus::Delivered);
  EXPECT_EQ(r.flags[1], 0u);
  EXPECT_EQ(r.status[2], ServeStatus::NoRoute);
  EXPECT_EQ(r.flags[2], kFleetFlagShed);
  EXPECT_EQ(rig.fleet->counters().shedQueries, 2u);
}

TEST(FleetBackpressure, RecoversOnceTheWriterDrains) {
  BackpressureRig rig(OverloadPolicy::Shed);
  ASSERT_TRUE(rig.fleet->overloaded(0));
  rig.gate.open();
  rig.fleet->drainWriters();
  EXPECT_FALSE(rig.fleet->overloaded(0));
  EXPECT_EQ(rig.fleet->writerQueueDepth(0), 0u);
  const FleetBatchResult r = rig.fleet->serve(rig.probes, true);
  EXPECT_EQ(r.flags[0], 0u);
  EXPECT_EQ(r.status[0], ServeStatus::Delivered);
  // The storm published one epoch per event on shard 0 only.
  EXPECT_EQ(r.shardEpochs[0], 6u);
  EXPECT_EQ(r.shardEpochs[3], 0u);
  // The served path detours the applied faults.
  EXPECT_TRUE(r.delivered(0));
  for (const Point p : r.paths[0]) {
    EXPECT_FALSE(rig.fleet->shard(0).snapshot()->faults().isFaulty(
        rig.fleet->layout().toLocal(0, p)));
  }
}

TEST(FleetBackpressure, MaxWriterQueueZeroDisablesAdmissionControl) {
  // A deep backlog with maxWriterQueue == 0: never overloaded, never
  // flagged — admission control is opt-in.
  const Mesh2D mesh = Mesh2D::square(32);
  Gate gate;
  FleetConfig cfg = fleetConfig("rb2", 2);
  cfg.halo = 1;
  cfg.maxWriterQueue = 0;
  cfg.applyHook = [&gate](std::size_t shard) {
    if (shard == 0) gate.waitUntilOpen();
  };
  ServiceFleet fleet(FaultSet(mesh), cfg);
  for (Coord x = 2; x < 8; ++x) fleet.submitAddFault({x, 4});
  EXPECT_GE(fleet.writerQueueDepth(0), 5u);
  EXPECT_FALSE(fleet.overloaded(0));
  const FleetBatchResult r = fleet.serve({{{2, 2}, {12, 12}}}, false);
  EXPECT_EQ(r.status[0], ServeStatus::Delivered);
  EXPECT_EQ(r.flags[0], 0u);
  gate.open();
  fleet.drainWriters();
}

TEST(FleetBackpressure, OverloadTripsStrictlyAboveMaxWriterQueue) {
  // The threshold is exclusive: backlog == maxWriterQueue serves clean,
  // backlog == maxWriterQueue + 1 degrades. maxWriterQueue = 1 is the
  // tightest admissible setting.
  const Mesh2D mesh = Mesh2D::square(32);
  Gate gate;
  FleetConfig cfg = fleetConfig("rb2", 2);
  cfg.halo = 1;
  cfg.maxWriterQueue = 1;
  cfg.applyHook = [&gate](std::size_t shard) {
    if (shard == 0) gate.waitUntilOpen();
  };
  ServiceFleet fleet(FaultSet(mesh), cfg);
  const std::vector<Query> probe{{{2, 2}, {12, 12}}};
  // Backlog 1 (the in-flight or queued event): at the threshold, clean.
  fleet.submitAddFault({2, 4});
  EXPECT_EQ(fleet.writerQueueDepth(0), 1u);
  EXPECT_FALSE(fleet.overloaded(0));
  EXPECT_EQ(fleet.serve(probe, false).flags[0], 0u);
  // Backlog 2: strictly above, degraded.
  fleet.submitAddFault({3, 4});
  EXPECT_EQ(fleet.writerQueueDepth(0), 2u);
  EXPECT_TRUE(fleet.overloaded(0));
  EXPECT_EQ(fleet.serve(probe, false).flags[0], kFleetFlagStale);
  gate.open();
  fleet.drainWriters();
  EXPECT_FALSE(fleet.overloaded(0));
}

TEST(FleetBackpressure, OverloadPolicyNamesRoundTrip) {
  for (const OverloadPolicy policy :
       {OverloadPolicy::Degrade, OverloadPolicy::Shed}) {
    OverloadPolicy parsed = OverloadPolicy::Degrade;
    EXPECT_TRUE(
        parseOverloadPolicy(overloadPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  OverloadPolicy untouched = OverloadPolicy::Shed;
  EXPECT_FALSE(parseOverloadPolicy("bogus", &untouched));
  EXPECT_FALSE(parseOverloadPolicy("", &untouched));
  EXPECT_EQ(untouched, OverloadPolicy::Shed);
}

// ------------------------------------------------- event routing

TEST(FleetTest, EventsRouteToOwnerAndHaloNeighbors) {
  const Mesh2D mesh = Mesh2D::square(32);
  FleetConfig cfg = fleetConfig("rb2", 2);
  cfg.halo = 2;
  ServiceFleet fleet(FaultSet(mesh), cfg);
  // Interior of shard 0: only shard 0's epoch moves.
  fleet.applyAddFault({4, 4});
  // On the border column owned by shard 0 (x=15), far from the y cut:
  // replicates into shard 1's halo only, so covering = {0, 1}.
  fleet.applyAddFault({15, 4});
  const FleetBatchResult r = fleet.serve({{{2, 2}, {3, 3}}}, false);
  EXPECT_EQ(r.shardEpochs[0], 2u);
  EXPECT_EQ(r.shardEpochs[1], 1u);
  EXPECT_EQ(r.shardEpochs[2], 0u);
  EXPECT_EQ(r.shardEpochs[3], 0u);
  // The replica landed at the right local cell in shard 1.
  EXPECT_TRUE(fleet.shard(1).snapshot()->faults().isFaulty(
      fleet.layout().toLocal(1, {15, 4})));
  // Async submission reaches the same state.
  fleet.submitRemoveFault({15, 4});
  fleet.drainWriters();
  EXPECT_FALSE(fleet.shard(1).snapshot()->faults().isFaulty(
      fleet.layout().toLocal(1, {15, 4})));
  EXPECT_EQ(fleet.shard(0).epoch(), 3u);
}

}  // namespace
}  // namespace meshrt
