// Cross-cutting randomized property tests: invariants that must hold for
// any fault configuration, exercised over many seeds.
#include <gtest/gtest.h>

#include "fault/analysis.h"
#include "info/knowledge.h"
#include "info/reachability.h"
#include "route/bfs.h"
#include "route/rb1.h"
#include "route/rb2.h"
#include "route/rb3.h"
#include "route/safety_vector.h"
#include "route/validate.h"
#include "test_util.h"

namespace meshrt {
namespace {

Point randomPoint(const Mesh2D& mesh, Rng& rng) {
  return {static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.width()))),
          static_cast<Coord>(
              rng.below(static_cast<std::uint64_t>(mesh.height())))};
}

// ---------------------------------------------------------------------------
// Frames: labeling in any frame equals relabeling transformed faults.
// ---------------------------------------------------------------------------
class FrameLabeling : public ::testing::TestWithParam<int> {};

TEST_P(FrameLabeling, QuadrantLabelsAgreeWithDirectComputation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 47 + 1);
  const Mesh2D mesh(14, 11);  // non-square catches x/y mixups
  FaultSet faults(mesh);
  for (int i = 0; i < 20; ++i) faults.add(randomPoint(mesh, rng));
  const FaultAnalysis fa(faults);
  for (int q = 0; q < 4; ++q) {
    const auto& qa = fa.quadrant(static_cast<Quadrant>(q));
    const FaultSet local = transformFaults(faults, qa.frame());
    const LabelGrid direct = computeLabels(qa.localMesh(), local);
    for (Coord y = 0; y < qa.localMesh().height(); ++y) {
      for (Coord x = 0; x < qa.localMesh().width(); ++x) {
        ASSERT_EQ(qa.labels().raw({x, y}), direct.raw({x, y}));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameLabeling, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Monotone path extraction: both orders yield valid monotone paths of the
// same (minimal) length.
// ---------------------------------------------------------------------------
class ExtractionOrders : public ::testing::TestWithParam<int> {};

TEST_P(ExtractionOrders, BalancedAndXFirstAgreeOnLength) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 3);
  const Mesh2D mesh = Mesh2D::square(16);
  const FaultSet faults = injectUniform(mesh, 30, rng);
  auto pass = [&](Point p) { return faults.isHealthy(p); };
  for (int t = 0; t < 40; ++t) {
    const Point a = randomPoint(mesh, rng);
    const Point b = randomPoint(mesh, rng);
    if (!pass(a) || !pass(b)) continue;
    const MonotoneField f(mesh, a, b, pass);
    if (!f.targetReachable()) continue;
    const auto balanced = f.extractPath(PathOrder::Balanced);
    const auto xfirst = f.extractPath(PathOrder::XFirst);
    ASSERT_EQ(balanced.size(), xfirst.size());
    for (const auto& path : {balanced, xfirst}) {
      ASSERT_EQ(path.front(), a);
      ASSERT_EQ(path.back(), b);
      for (std::size_t i = 1; i < path.size(); ++i) {
        ASSERT_EQ(manhattan(path[i - 1], path[i]), 1);
        ASSERT_TRUE(pass(path[i]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractionOrders, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Loop erasure: output is a valid simple path with the same endpoints.
// ---------------------------------------------------------------------------
class LoopErasure : public ::testing::TestWithParam<int> {};

TEST_P(LoopErasure, ProducesSimpleValidPaths) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 83 + 5);
  const Mesh2D mesh = Mesh2D::square(12);
  // Random walk with revisits.
  std::vector<Point> walk{randomPoint(mesh, rng)};
  for (int i = 0; i < 80; ++i) {
    const Dir d = kAllDirs[rng.below(4)];
    if (auto q = mesh.neighbor(walk.back(), d)) walk.push_back(*q);
  }
  const auto erased = loopErased(walk);
  ASSERT_FALSE(erased.empty());
  EXPECT_EQ(erased.front(), walk.front());
  EXPECT_EQ(erased.back(), walk.back());
  EXPECT_LE(erased.size(), walk.size());
  std::set<Point> seen;
  for (std::size_t i = 0; i < erased.size(); ++i) {
    EXPECT_TRUE(seen.insert(erased[i]).second) << "node revisited";
    if (i) {
      EXPECT_EQ(manhattan(erased[i - 1], erased[i]), 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopErasure, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Safety vectors: clearance always equals the brute-force scan.
// ---------------------------------------------------------------------------
class SafetyVectorsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SafetyVectorsFuzz, ClearanceMatchesBruteScan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 7);
  const Mesh2D mesh(13, 9);
  const FaultSet faults = injectUniform(mesh, 15, rng);
  const SafetyVectors sv(faults);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      const Point p{x, y};
      for (Dir d : kAllDirs) {
        Coord brute = 0;
        if (faults.isHealthy(p)) {
          Point q = p + offset(d);
          const Coord extent =
              (d == Dir::PlusX || d == Dir::MinusX) ? mesh.width()
                                                    : mesh.height();
          brute = extent;  // clear to the edge unless a fault intervenes
          Coord steps = 1;
          while (mesh.contains(q)) {
            if (faults.isFaulty(q)) {
              brute = steps;
              break;
            }
            q = q + offset(d);
            ++steps;
          }
        }
        ASSERT_EQ(sv.clearance(p, d), brute)
            << p.str() << " " << dirName(d);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyVectorsFuzz, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Routing engines never produce invalid paths, under any knowledge level,
// even at extreme densities where most pairs are unreachable.
// ---------------------------------------------------------------------------
class ExtremeDensity : public ::testing::TestWithParam<int> {};

TEST_P(ExtremeDensity, RoutersStaySafeNearPercolation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 113 + 11);
  const Mesh2D mesh = Mesh2D::square(30);
  // ~35% faults: beyond the paper's operating range; everything must still
  // terminate and stay valid.
  const FaultSet faults = injectUniform(mesh, 315, rng);
  const FaultAnalysis fa(faults);
  Rb1Router rb1(fa);
  Rb2Router rb2(fa);
  Rb3Router rb3(fa);
  for (int t = 0; t < 15; ++t) {
    const Point s = randomPoint(mesh, rng);
    const Point d = randomPoint(mesh, rng);
    if (faults.isFaulty(s) || faults.isFaulty(d)) continue;
    for (Router* r : std::initializer_list<Router*>{&rb1, &rb2, &rb3}) {
      const auto res = r->route(s, d);
      if (res.delivered) {
        EXPECT_TRUE(isValidPath(faults, s, d, res.path)) << r->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtremeDensity, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Theorem 1 under every quadrant: RB2 optimal for destinations in all four
// directions from the source.
// ---------------------------------------------------------------------------
class AllQuadrants : public ::testing::TestWithParam<int> {};

TEST_P(AllQuadrants, Rb2OptimalInEveryDirection) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 127 + 13);
  const Mesh2D mesh = Mesh2D::square(20);
  const FaultSet faults = injectUniform(mesh, 60, rng);
  const FaultAnalysis fa(faults);
  Rb2Router rb2(fa);
  const Point s{10, 10};
  if (faults.isFaulty(s)) return;
  for (Point d : {Point{17, 16}, Point{2, 17}, Point{16, 3}, Point{3, 2},
                  Point{10, 18}, Point{18, 10}, Point{10, 1}, Point{1, 10}}) {
    if (faults.isFaulty(d)) continue;
    const auto& qa = fa.forPair(s, d);
    const Point sL = qa.frame().toLocal(s);
    const Point dL = qa.frame().toLocal(d);
    if (!qa.labels().isSafe(sL) || !qa.labels().isSafe(dL)) continue;
    const auto dist = safeDistances(qa.localMesh(), qa.labels(), sL);
    if (dist[dL] == kUnreachable) continue;
    const auto res = rb2.route(s, d);
    ASSERT_TRUE(res.delivered) << "d=" << d.str();
    EXPECT_EQ(res.hops(), dist[dL]) << "d=" << d.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllQuadrants, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Knowledge bases remain consistent under the B2 flood clipping.
// ---------------------------------------------------------------------------
TEST(FloodClipProperty, BorderGluedMccRegionStaysBanded) {
  // An MCC glued to the east border has no +X boundary; its broadcast must
  // not escape west of its -X boundary or east of its own extent.
  const Mesh2D mesh = Mesh2D::square(16);
  std::vector<Point> wall;
  for (Coord x = 6; x <= 15; ++x) wall.push_back({x, 8});
  const QuadrantAnalysis qa(testutil::faultsAt(mesh, wall), Quadrant::NE);
  const QuadrantInfo info(qa, InfoModel::B2);
  // Type-I triples may appear in the band x >= 5 (the -X boundary column)
  // but never west of it.
  for (Coord y = 0; y < 8; ++y) {
    for (Coord x = 0; x < 5; ++x) {
      EXPECT_TRUE(info.typeIKnown({x, y}).empty())
          << "(" << x << "," << y << ")";
    }
  }
}

}  // namespace
}  // namespace meshrt
