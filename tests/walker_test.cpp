// Tests for the boundary walker and ring construction: plumbing, hugging,
// joins, mesh-edge termination, and the loop-erasure utility.
#include <gtest/gtest.h>

#include "fault/analysis.h"
#include "info/boundary_walker.h"
#include "route/validate.h"
#include "test_util.h"

namespace meshrt {
namespace {

using testutil::faultsAt;

struct Fixture {
  Mesh2D mesh;
  LabelGrid labels;
  MccExtraction ext;

  explicit Fixture(const Mesh2D& m, const std::vector<Point>& cells)
      : mesh(m),
        labels(computeLabels(m, faultsAt(m, cells))),
        ext(extractMccs(m, labels)) {}
};

TEST(WalkerTest, PlumbsStraightToMeshEdge) {
  // Single fault at (5,5): -X boundary from c=(4,4) straight down x=4.
  Fixture s(Mesh2D::square(10), {{5, 5}});
  const auto walk = walkBoundary(s.mesh, s.labels, {4, 4}, WalkHand::Left);
  ASSERT_EQ(walk.size(), 5u);
  for (std::size_t i = 0; i < walk.size(); ++i) {
    EXPECT_EQ(walk[i], (Point{4, 4 - static_cast<Coord>(i)}));
  }
}

TEST(WalkerTest, LeftHugTurnsWestAroundObstacle) {
  // Wall below the walk line: the -X boundary makes a right turn (hug
  // westward) and rejoins the wall's own -X boundary at its corner.
  const Mesh2D mesh = Mesh2D::square(12);
  std::vector<Point> cells{{8, 8}};                      // MCC starting the walk
  for (Coord x = 3; x <= 9; ++x) cells.push_back({x, 5});  // wall below
  Fixture s(mesh, cells);
  const auto walk = walkBoundary(s.mesh, s.labels, {7, 7}, WalkHand::Left);
  // Walk: (7,7) -> (7,6) -> blocked at (7,5) -> west along y=6 to x=2 ->
  // down x=2 (the wall's own -X boundary column) to y=0.
  EXPECT_EQ(walk.front(), (Point{7, 7}));
  EXPECT_EQ(walk.back(), (Point{2, 0}));
  for (Point p : walk) EXPECT_TRUE(s.labels.isSafe(p));
  // It must pass through the wall's initialization corner (2,4).
  EXPECT_NE(std::find(walk.begin(), walk.end(), Point{2, 4}), walk.end());
}

TEST(WalkerTest, RightHugTurnsEastAroundObstacle) {
  const Mesh2D mesh = Mesh2D::square(12);
  std::vector<Point> cells;
  for (Coord x = 3; x <= 8; ++x) cells.push_back({x, 5});
  Fixture s(mesh, cells);
  // +X boundary style walk from just above the wall's west end.
  const auto walk = walkBoundary(s.mesh, s.labels, {5, 7}, WalkHand::Right);
  EXPECT_EQ(walk.back(), (Point{9, 0}));
  // Passes the wall's opposite corner (9,6).
  EXPECT_NE(std::find(walk.begin(), walk.end(), Point{9, 6}), walk.end());
}

TEST(WalkerTest, StartInsideUnsafeReturnsEmpty) {
  Fixture s(Mesh2D::square(8), {{4, 4}});
  EXPECT_TRUE(walkBoundary(s.mesh, s.labels, {4, 4}, WalkHand::Left).empty());
  EXPECT_TRUE(
      walkBoundary(s.mesh, s.labels, {-1, 2}, WalkHand::Left).empty());
}

TEST(WalkerTest, ReportsIntersectedMccs) {
  const Mesh2D mesh = Mesh2D::square(12);
  std::vector<Point> cells{{8, 8}};
  for (Coord x = 3; x <= 9; ++x) cells.push_back({x, 5});
  Fixture s(mesh, cells);
  std::vector<int> hit;
  walkBoundary(s.mesh, s.labels, {7, 7}, WalkHand::Left, &s.ext.mccIndex,
               &hit);
  ASSERT_EQ(hit.size(), 1u);
  const int wallId = s.ext.mccIndex[{5, 5}];
  EXPECT_EQ(hit.front(), wallId);
}

TEST(WalkerTest, WalkVisitsEachBoundaryNodeOnce) {
  Rng rng(17);
  const Mesh2D mesh = Mesh2D::square(24);
  const FaultSet faults = injectUniform(mesh, 60, rng);
  const auto labels = computeLabels(mesh, faults);
  const auto ext = extractMccs(mesh, labels);
  for (const Mcc& mcc : ext.mccs) {
    if (!mcc.cornerC) continue;
    const auto walk =
        walkBoundary(mesh, labels, *mcc.cornerC, WalkHand::Left);
    std::set<Point> unique(walk.begin(), walk.end());
    // Hug climbs may revisit in pathological nests; never by much.
    EXPECT_GE(unique.size() + 2, walk.size());
    for (Point p : walk) EXPECT_TRUE(labels.isSafe(p));
  }
}

TEST(RingTest, SingleCellRingHasEightNodes) {
  Fixture s(Mesh2D::square(9), {{4, 4}});
  const auto ring = ringNodes(s.mesh, s.labels, s.ext.mccs.front());
  EXPECT_EQ(ring.size(), 8u);
}

TEST(RingTest, BorderMccRingClipped) {
  Fixture s(Mesh2D::square(8), {{0, 0}});
  const auto ring = ringNodes(s.mesh, s.labels, s.ext.mccs.front());
  EXPECT_EQ(ring.size(), 3u);  // (1,0), (0,1), (1,1)
}

TEST(RingTest, RingNodesAreSafeAndAdjacent) {
  Rng rng(19);
  const Mesh2D mesh = Mesh2D::square(20);
  const FaultSet faults = injectUniform(mesh, 50, rng);
  const auto labels = computeLabels(mesh, faults);
  const auto ext = extractMccs(mesh, labels);
  for (const Mcc& mcc : ext.mccs) {
    for (Point p : ringNodes(mesh, labels, mcc)) {
      EXPECT_TRUE(labels.isSafe(p));
      bool adjacent = false;
      for (Coord dy = -1; dy <= 1; ++dy) {
        for (Coord dx = -1; dx <= 1; ++dx) {
          const Point q{p.x + dx, p.y + dy};
          if (mesh.contains(q) && ext.mccIndex[q] == mcc.id) adjacent = true;
        }
      }
      EXPECT_TRUE(adjacent) << p.str();
    }
  }
}

TEST(LoopErasureTest, RemovesSimpleBacktrack) {
  const std::vector<Point> path{{0, 0}, {1, 0}, {2, 0}, {1, 0}, {1, 1}};
  const auto erased = loopErased(path);
  EXPECT_EQ(erased,
            (std::vector<Point>{{0, 0}, {1, 0}, {1, 1}}));
}

TEST(LoopErasureTest, KeepsSimplePathsIntact) {
  const std::vector<Point> path{{0, 0}, {1, 0}, {1, 1}, {2, 1}};
  EXPECT_EQ(loopErased(path), path);
}

TEST(LoopErasureTest, HandlesNestedLoops) {
  const std::vector<Point> path{{0, 0}, {0, 1}, {1, 1}, {1, 0}, {0, 0},
                                {0, 1}, {0, 2}};
  const auto erased = loopErased(path);
  EXPECT_EQ(erased, (std::vector<Point>{{0, 0}, {0, 1}, {0, 2}}));
}

}  // namespace
}  // namespace meshrt
