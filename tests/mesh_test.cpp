// Tests for the mesh substrate: points, directions, topology, frames,
// rectangles and staircase polygons.
#include <gtest/gtest.h>

#include "mesh/direction.h"
#include "mesh/frame.h"
#include "mesh/mesh.h"
#include "mesh/rect.h"
#include "mesh/shard_layout.h"
#include "mesh/staircase.h"
#include "test_util.h"

namespace meshrt {
namespace {

TEST(PointTest, ManhattanDistanceMatchesDefinition) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {2, -5}), 14);
}

TEST(PointTest, DominanceOrdersQuadrants) {
  EXPECT_TRUE(dominatedBy({1, 1}, {2, 2}));
  EXPECT_TRUE(dominatedBy({2, 2}, {2, 2}));
  EXPECT_FALSE(dominatedBy({3, 1}, {2, 2}));
  EXPECT_FALSE(dominatedBy({1, 3}, {2, 2}));
}

TEST(DirectionTest, OffsetsAreUnitSteps) {
  for (Dir d : kAllDirs) {
    EXPECT_EQ(manhattan({0, 0}, offset(d)), 1) << dirName(d);
  }
}

TEST(DirectionTest, OppositeIsInvolution) {
  for (Dir d : kAllDirs) EXPECT_EQ(opposite(opposite(d)), d);
}

TEST(DirectionTest, FourRightTurnsAreIdentity) {
  for (Dir d : kAllDirs) {
    EXPECT_EQ(turnRight(turnRight(turnRight(turnRight(d)))), d);
  }
}

TEST(DirectionTest, LeftIsInverseOfRight) {
  for (Dir d : kAllDirs) EXPECT_EQ(turnLeft(turnRight(d)), d);
}

TEST(DirectionTest, RightTurnRotatesClockwise) {
  EXPECT_EQ(turnRight(Dir::PlusY), Dir::PlusX);
  EXPECT_EQ(turnRight(Dir::PlusX), Dir::MinusY);
  EXPECT_EQ(turnRight(Dir::MinusY), Dir::MinusX);
  EXPECT_EQ(turnRight(Dir::MinusX), Dir::PlusY);
}

TEST(MeshTest, ContainsMatchesBounds) {
  const Mesh2D mesh(4, 3);
  EXPECT_TRUE(mesh.contains({0, 0}));
  EXPECT_TRUE(mesh.contains({3, 2}));
  EXPECT_FALSE(mesh.contains({4, 0}));
  EXPECT_FALSE(mesh.contains({0, 3}));
  EXPECT_FALSE(mesh.contains({-1, 0}));
}

TEST(MeshTest, IdAndPointRoundTrip) {
  const Mesh2D mesh(5, 7);
  for (NodeId id = 0; id < mesh.nodeCount(); ++id) {
    EXPECT_EQ(mesh.id(mesh.point(id)), id);
  }
}

TEST(MeshTest, InteriorNodeDegreeIsFour) {
  const Mesh2D mesh = Mesh2D::square(5);
  EXPECT_EQ(mesh.neighbors({2, 2}).size(), 4u);
  EXPECT_EQ(mesh.neighbors({0, 0}).size(), 2u);  // corner
  EXPECT_EQ(mesh.neighbors({0, 2}).size(), 3u);  // edge
}

TEST(MeshTest, NeighborRespectsBorders) {
  const Mesh2D mesh = Mesh2D::square(3);
  EXPECT_FALSE(mesh.neighbor({0, 0}, Dir::MinusX).has_value());
  EXPECT_FALSE(mesh.neighbor({2, 2}, Dir::PlusX).has_value());
  EXPECT_EQ(mesh.neighbor({1, 1}, Dir::PlusY), (Point{1, 2}));
}

TEST(NodeMapTest, StoresPerNodeValues) {
  const Mesh2D mesh(3, 3);
  NodeMap<int> map(mesh, 7);
  EXPECT_EQ((map[{1, 1}]), 7);
  map[{1, 1}] = 42;
  EXPECT_EQ((map[{1, 1}]), 42);
  EXPECT_EQ((map[{0, 0}]), 7);
}

TEST(QuadrantTest, TiesResolveTowardNE) {
  EXPECT_EQ(quadrantOf({5, 5}, {5, 5}), Quadrant::NE);
  EXPECT_EQ(quadrantOf({5, 5}, {9, 5}), Quadrant::NE);
  EXPECT_EQ(quadrantOf({5, 5}, {2, 5}), Quadrant::NW);
  EXPECT_EQ(quadrantOf({5, 5}, {5, 2}), Quadrant::SE);
  EXPECT_EQ(quadrantOf({5, 5}, {2, 2}), Quadrant::SW);
}

class FrameRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FrameRoundTrip, PointsAndDirsRoundTripThroughEveryFrame) {
  const Mesh2D mesh(7, 5);
  const auto q = static_cast<Quadrant>(GetParam() % 4);
  const bool transposed = GetParam() >= 4;
  const Frame frame = Frame::forQuadrant(mesh, q, transposed);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      const Point p{x, y};
      EXPECT_EQ(frame.toWorld(frame.toLocal(p)), p);
      EXPECT_TRUE(frame.localMesh().contains(frame.toLocal(p)));
    }
  }
  for (Dir d : kAllDirs) {
    EXPECT_EQ(frame.toWorld(frame.toLocal(d)), d);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFrames, FrameRoundTrip, ::testing::Range(0, 8));

TEST(FrameTest, LocalProgressIsPlusXPlusY) {
  const Mesh2D mesh = Mesh2D::square(10);
  // For every quadrant, the local image of d must dominate the local image
  // of s: routing progresses in +X/+Y after normalization.
  const Point s{4, 4};
  for (Point d : {Point{8, 7}, Point{1, 7}, Point{8, 2}, Point{1, 2}}) {
    const Frame frame = Frame::forPair(mesh, s, d);
    EXPECT_TRUE(dominatedBy(frame.toLocal(s), frame.toLocal(d)))
        << "d=" << d.str();
  }
}

TEST(FrameTest, TransposeSwapsAxes) {
  const Mesh2D mesh(7, 5);
  const Frame frame = Frame::forQuadrant(mesh, Quadrant::NE, true);
  EXPECT_EQ(frame.localWidth(), 5);
  EXPECT_EQ(frame.localHeight(), 7);
  EXPECT_EQ(frame.toLocal(Point{3, 1}), (Point{1, 3}));
  EXPECT_EQ(frame.toLocal(Dir::PlusX), Dir::PlusY);
  EXPECT_EQ(frame.toLocal(Dir::MinusY), Dir::MinusX);
}

TEST(FrameTest, StepConsistency) {
  // Moving one step in a world direction equals moving the mapped step in
  // the local frame, for every frame.
  const Mesh2D mesh(9, 6);
  for (int f = 0; f < 8; ++f) {
    const Frame frame =
        Frame::forQuadrant(mesh, static_cast<Quadrant>(f % 4), f >= 4);
    const Point p{4, 3};
    for (Dir d : kAllDirs) {
      const Point world = p + offset(d);
      const Point local = frame.toLocal(p) + offset(frame.toLocal(d));
      EXPECT_EQ(frame.toLocal(world), local);
    }
  }
}

TEST(RectTest, BetweenNormalizesCorners) {
  const Rect r = Rect::between({5, 1}, {2, 4});
  EXPECT_EQ(r, (Rect{2, 1, 5, 4}));
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 16);
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect r{2, 2, 5, 5};
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_FALSE(r.contains({6, 5}));
  EXPECT_TRUE(r.intersects(Rect{5, 5, 8, 8}));
  EXPECT_FALSE(r.intersects(Rect{6, 6, 8, 8}));
  EXPECT_FALSE(Rect{}.intersects(r));
}

TEST(StaircaseTest, FromCellsAcceptsSingleCell) {
  const std::vector<Point> cells{{3, 4}};
  const auto shape = Staircase::fromCells(cells);
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->xmin(), 3);
  EXPECT_EQ(shape->xmax(), 3);
  EXPECT_EQ(shape->cellCount(), 1u);
  EXPECT_EQ(shape->initializationCorner(), (Point{2, 3}));
  EXPECT_EQ(shape->oppositeCorner(), (Point{4, 5}));
}

TEST(StaircaseTest, FromCellsAcceptsAscendingStaircase) {
  const std::vector<Point> cells{{2, 2}, {2, 3}, {3, 3}, {3, 4}, {4, 4}};
  const auto shape = Staircase::fromCells(cells);
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->span(2), (ColumnSpan{2, 3}));
  EXPECT_EQ(shape->span(3), (ColumnSpan{3, 4}));
  EXPECT_EQ(shape->span(4), (ColumnSpan{4, 4}));
  EXPECT_EQ(shape->cells().size(), 5u);
}

TEST(StaircaseTest, FromCellsRejectsDescendingTop) {
  // hi decreases from column 2 to 3: not an SW->NE staircase.
  const std::vector<Point> cells{{2, 4}, {2, 5}, {3, 4}};
  EXPECT_FALSE(Staircase::fromCells(cells).has_value());
}

TEST(StaircaseTest, FromCellsRejectsColumnGap) {
  const std::vector<Point> cells{{2, 2}, {4, 2}};
  EXPECT_FALSE(Staircase::fromCells(cells).has_value());
}

TEST(StaircaseTest, FromCellsRejectsSplitColumn) {
  const std::vector<Point> cells{{2, 2}, {2, 4}};
  EXPECT_FALSE(Staircase::fromCells(cells).has_value());
}

TEST(StaircaseTest, FromCellsRejectsDisconnectedColumns) {
  // Columns share no row: 4-disconnected even though both are intervals.
  const std::vector<Point> cells{{2, 2}, {3, 5}};
  EXPECT_FALSE(Staircase::fromCells(cells).has_value());
}

TEST(StaircaseTest, ContainsMatchesCells) {
  const std::vector<Point> cells{{2, 2}, {2, 3}, {3, 3}};
  const auto shape = Staircase::fromCells(cells);
  ASSERT_TRUE(shape.has_value());
  for (Point p : cells) EXPECT_TRUE(shape->contains(p));
  EXPECT_FALSE(shape->contains({3, 2}));
  EXPECT_FALSE(shape->contains({1, 2}));
}

// blocksMonotone is validated against brute-force monotone BFS on meshes
// containing exactly the staircase as obstacle.
class StaircaseBlocking : public ::testing::TestWithParam<int> {};

TEST_P(StaircaseBlocking, MatchesBruteForceOnRandomPairs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const Mesh2D mesh = Mesh2D::square(12);

  // Random ascending staircase.
  const Coord xmin = static_cast<Coord>(rng.between(1, 5));
  const Coord cols = static_cast<Coord>(rng.between(1, 5));
  std::vector<Point> cells;
  Coord lo = static_cast<Coord>(rng.between(1, 4));
  Coord hi = std::min<Coord>(10, lo + static_cast<Coord>(rng.between(0, 3)));
  for (Coord x = xmin; x < xmin + cols; ++x) {
    for (Coord y = lo; y <= hi; ++y) cells.push_back({x, y});
    // Next column: lo/hi both non-decreasing, lo <= previous hi so the
    // columns stay 4-connected.
    lo = std::min<Coord>(lo + static_cast<Coord>(rng.between(0, 2)), hi);
    hi = std::min<Coord>(10, hi + static_cast<Coord>(rng.between(0, 2)));
  }
  const auto shape = Staircase::fromCells(cells);
  ASSERT_TRUE(shape.has_value());

  auto passable = [&](Point p) { return !shape->contains(p); };
  for (int trial = 0; trial < 50; ++trial) {
    Point a{static_cast<Coord>(rng.between(0, 11)),
            static_cast<Coord>(rng.between(0, 11))};
    Point b{static_cast<Coord>(rng.between(a.x, 11)),
            static_cast<Coord>(rng.between(a.y, 11))};
    if (shape->contains(a) || shape->contains(b)) continue;
    const bool brute =
        !testutil::bruteMonotoneReachable(mesh, a, b, passable);
    EXPECT_EQ(shape->blocksMonotone(a, b), brute)
        << "a=" << a.str() << " b=" << b.str();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, StaircaseBlocking,
                         ::testing::Range(0, 20));

TEST(ShardLayoutTest, OwnedRectanglesPartitionTheMesh) {
  const Mesh2D mesh(10, 7);
  const ShardLayout layout(mesh, 3, 1);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      const Point p{x, y};
      std::size_t holders = 0;
      for (std::size_t k = 0; k < layout.shardCount(); ++k) {
        if (layout.owned(k).contains(p)) ++holders;
      }
      EXPECT_EQ(holders, 1u) << p.str();
      EXPECT_TRUE(layout.owned(layout.owner(p)).contains(p)) << p.str();
    }
  }
}

TEST(ShardLayoutTest, UnevenSplitGivesFirstShardsTheExtraCell) {
  // 10 columns over 3 shards: widths 4, 3, 3; 7 rows: heights 3, 2, 2.
  const ShardLayout layout(Mesh2D(10, 7), 3, 0);
  EXPECT_EQ(layout.owned(layout.shardAt(0, 0)).width(), 4);
  EXPECT_EQ(layout.owned(layout.shardAt(1, 0)).width(), 3);
  EXPECT_EQ(layout.owned(layout.shardAt(2, 0)).width(), 3);
  EXPECT_EQ(layout.owned(layout.shardAt(0, 0)).height(), 3);
  EXPECT_EQ(layout.owned(layout.shardAt(0, 1)).height(), 2);
  EXPECT_EQ(layout.owned(layout.shardAt(0, 2)).height(), 2);
  EXPECT_EQ(layout.minShardSide(), 2);
}

TEST(ShardLayoutTest, LocalIsOwnedPlusHaloClippedAtMeshEdge) {
  const Mesh2D mesh = Mesh2D::square(12);
  const ShardLayout layout(mesh, 2, 2);
  // Corner shard (0,0): owns [0,5]x[0,5]; halo only extends into +X/+Y.
  const std::size_t k = layout.shardAt(0, 0);
  EXPECT_EQ(layout.owned(k), (Rect{0, 0, 5, 5}));
  EXPECT_EQ(layout.local(k), (Rect{0, 0, 7, 7}));
  EXPECT_FALSE(layout.artificialWall(k, 0));  // -X is the mesh edge
  EXPECT_TRUE(layout.artificialWall(k, 1));   // +X cuts the mesh
  EXPECT_FALSE(layout.artificialWall(k, 2));
  EXPECT_TRUE(layout.artificialWall(k, 3));
  const Mesh2D localMesh = layout.localMesh(k);
  EXPECT_EQ(localMesh.width(), 8);
  EXPECT_EQ(localMesh.height(), 8);
}

TEST(ShardLayoutTest, CoveringIsExactlyTheShardsWhoseLocalRectHoldsP) {
  const Mesh2D mesh(11, 11);
  const ShardLayout layout(mesh, 3, 1);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      const Point p{x, y};
      std::vector<std::size_t> expected;
      for (std::size_t k = 0; k < layout.shardCount(); ++k) {
        if (layout.local(k).contains(p)) expected.push_back(k);
      }
      EXPECT_EQ(layout.covering(p), expected) << p.str();
    }
  }
}

TEST(ShardLayoutTest, CoveringFallsBackToFullScanForWideHalos) {
  // halo >= min shard side: a fault can land in non-neighbor shards too.
  const ShardLayout layout(Mesh2D::square(9), 3, 3);
  const std::vector<std::size_t> cover = layout.covering({4, 4});
  EXPECT_EQ(cover.size(), layout.shardCount());  // center reaches everyone
}

TEST(ShardLayoutTest, LocalGlobalRoundTrip) {
  const Mesh2D mesh(13, 9);
  const ShardLayout layout(mesh, 3, 2);
  for (std::size_t k = 0; k < layout.shardCount(); ++k) {
    const Rect& l = layout.local(k);
    for (Coord y = l.y0; y <= l.y1; ++y) {
      for (Coord x = l.x0; x <= l.x1; ++x) {
        const Point p{x, y};
        const Point q = layout.toLocal(k, p);
        EXPECT_TRUE(layout.localMesh(k).contains(q));
        EXPECT_EQ(layout.toGlobal(k, q), p);
      }
    }
  }
}

TEST(ShardLayoutTest, CrossingsAreAdjacentOwnedPairsAndMirror) {
  const ShardLayout layout(Mesh2D::square(10), 2, 1);
  for (std::size_t from = 0; from < layout.shardCount(); ++from) {
    for (std::size_t to : layout.neighbors(from)) {
      const auto fwd = layout.crossings(from, to);
      const auto bwd = layout.crossings(to, from);
      ASSERT_EQ(fwd.size(), bwd.size());
      ASSERT_FALSE(fwd.empty());
      for (std::size_t i = 0; i < fwd.size(); ++i) {
        EXPECT_EQ(manhattan(fwd[i].a, fwd[i].b), 1);
        EXPECT_EQ(layout.owner(fwd[i].a), from);
        EXPECT_EQ(layout.owner(fwd[i].b), to);
        EXPECT_EQ(fwd[i].a, bwd[i].b);
        EXPECT_EQ(fwd[i].b, bwd[i].a);
      }
    }
  }
  // Diagonal shards share no edge: no crossings.
  EXPECT_TRUE(
      layout.crossings(layout.shardAt(0, 0), layout.shardAt(1, 1)).empty());
}

TEST(ShardLayoutTest, NeighborsMatchTheShardGrid) {
  const ShardLayout layout(Mesh2D::square(9), 3, 1);
  EXPECT_EQ(layout.neighbors(layout.shardAt(0, 0)).size(), 2u);
  EXPECT_EQ(layout.neighbors(layout.shardAt(1, 0)).size(), 3u);
  EXPECT_EQ(layout.neighbors(layout.shardAt(1, 1)).size(), 4u);
  // Center shard's neighbors, ascending: up, left, right, down.
  const std::vector<std::size_t> expected{1, 3, 5, 7};
  EXPECT_EQ(layout.neighbors(4), expected);
}

TEST(ShardLayoutTest, SingleShardOwnsEverythingWithNoWalls) {
  const Mesh2D mesh = Mesh2D::square(6);
  const ShardLayout layout(mesh, 1, 2);
  EXPECT_EQ(layout.shardCount(), 1u);
  EXPECT_EQ(layout.owned(0), (Rect{0, 0, 5, 5}));
  EXPECT_EQ(layout.local(0), layout.owned(0));
  for (int side = 0; side < 4; ++side) {
    EXPECT_FALSE(layout.artificialWall(0, side));
  }
  EXPECT_TRUE(layout.neighbors(0).empty());
}

}  // namespace
}  // namespace meshrt
