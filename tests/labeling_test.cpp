// Tests for the MCC labeling fixpoint: the paper's Figure 1 patterns,
// structural properties, and equivalence with the distributed protocol.
#include <gtest/gtest.h>

#include "fault/labeling.h"
#include "sim/labeling_protocol.h"
#include "test_util.h"

namespace meshrt {
namespace {

using testutil::faultsAt;

TEST(LabelingTest, FaultFreeMeshIsAllSafe) {
  const Mesh2D mesh = Mesh2D::square(8);
  const auto labels = computeLabels(mesh, FaultSet(mesh));
  for (Coord y = 0; y < 8; ++y) {
    for (Coord x = 0; x < 8; ++x) {
      EXPECT_TRUE(labels.isSafe({x, y}));
    }
  }
  EXPECT_EQ(countUnsafe(mesh, labels), 0u);
}

TEST(LabelingTest, SingleFaultLabelsNoExtraNodes) {
  const Mesh2D mesh = Mesh2D::square(8);
  const auto labels = computeLabels(mesh, faultsAt(mesh, {{4, 4}}));
  EXPECT_TRUE(labels.isFaulty({4, 4}));
  EXPECT_EQ(countUnsafe(mesh, labels), 1u);
}

TEST(LabelingTest, UselessFillsSWPocket) {
  // Faults at (5,6) and (6,5): the node (5,5) has faulty +X and +Y
  // neighbors, so entering it forces a -X/-Y move (Figure 1(a)).
  const Mesh2D mesh = Mesh2D::square(10);
  const auto labels = computeLabels(mesh, faultsAt(mesh, {{5, 6}, {6, 5}}));
  EXPECT_TRUE(labels.isUseless({5, 5}));
  EXPECT_FALSE(labels.isCantReach({5, 5}));
}

TEST(LabelingTest, CantReachFillsNEPocket) {
  const Mesh2D mesh = Mesh2D::square(10);
  const auto labels = computeLabels(mesh, faultsAt(mesh, {{5, 6}, {6, 5}}));
  EXPECT_TRUE(labels.isCantReach({6, 6}));
  EXPECT_FALSE(labels.isUseless({6, 6}));
}

TEST(LabelingTest, AntiDiagonalFaultsCloseToSquare) {
  const Mesh2D mesh = Mesh2D::square(10);
  const auto labels = computeLabels(mesh, faultsAt(mesh, {{5, 6}, {6, 5}}));
  // The four cells form one unsafe 2x2 square.
  EXPECT_EQ(countUnsafe(mesh, labels), 4u);
}

TEST(LabelingTest, AntiDiagonalLineExpandsToFullSquare) {
  // Three faults on an anti-diagonal label the full 3x3 block unsafe.
  const Mesh2D mesh = Mesh2D::square(12);
  const auto labels =
      computeLabels(mesh, faultsAt(mesh, {{5, 7}, {6, 6}, {7, 5}}));
  std::size_t unsafe = 0;
  for (Coord y = 5; y <= 7; ++y) {
    for (Coord x = 5; x <= 7; ++x) {
      EXPECT_TRUE(labels.isUnsafe({x, y})) << x << "," << y;
      ++unsafe;
    }
  }
  EXPECT_EQ(countUnsafe(mesh, labels), unsafe);
}

TEST(LabelingTest, MainDiagonalFaultsDoNotMerge) {
  // Faults at (5,5) and (6,6) create no useless/can't-reach nodes: a route
  // can pass between them.
  const Mesh2D mesh = Mesh2D::square(10);
  const auto labels = computeLabels(mesh, faultsAt(mesh, {{5, 5}, {6, 6}}));
  EXPECT_EQ(countUnsafe(mesh, labels), 2u);
}

TEST(LabelingTest, UselessCascades) {
  // A south-opening U-cavity becomes entirely useless: every interior node
  // eventually forces a backtrack for +X/+Y routing.
  const Mesh2D mesh = Mesh2D::square(12);
  std::vector<Point> walls;
  for (Coord y = 4; y <= 8; ++y) {
    walls.push_back({3, y});  // west arm
    walls.push_back({7, y});  // east arm
  }
  for (Coord x = 3; x <= 7; ++x) walls.push_back({x, 8});  // north base
  const auto labels = computeLabels(mesh, faultsAt(mesh, walls));
  for (Coord y = 4; y <= 7; ++y) {
    for (Coord x = 4; x <= 6; ++x) {
      EXPECT_TRUE(labels.isUseless({x, y})) << x << "," << y;
    }
  }
}

TEST(LabelingTest, BordersDoNotCascade) {
  // With safe walls, a fault next to the NE corner must not disable whole
  // border rows (see DESIGN.md section 3 on border semantics).
  const Mesh2D mesh = Mesh2D::square(8);
  const auto labels = computeLabels(mesh, faultsAt(mesh, {{6, 7}, {7, 6}}));
  EXPECT_TRUE(labels.isCantReach({7, 7}));
  EXPECT_TRUE(labels.isUseless({6, 6}));
  EXPECT_FALSE(labels.isUnsafe({5, 7}));
  EXPECT_FALSE(labels.isUnsafe({7, 5}));
}

TEST(LabelingTest, NodeCanBeBothUselessAndCantReach) {
  // All four neighbors faulty: both labels apply.
  const Mesh2D mesh = Mesh2D::square(9);
  const auto labels = computeLabels(
      mesh, faultsAt(mesh, {{4, 3}, {4, 5}, {3, 4}, {5, 4}}));
  EXPECT_TRUE(labels.isUseless({4, 4}));
  EXPECT_TRUE(labels.isCantReach({4, 4}));
}

TEST(LabelingTest, TransformFaultsReexpressesCoordinates) {
  const Mesh2D mesh(6, 4);
  const FaultSet faults = faultsAt(mesh, {{1, 1}, {5, 0}});
  const Frame frame = Frame::forQuadrant(mesh, Quadrant::NW);
  const FaultSet local = transformFaults(faults, frame);
  EXPECT_EQ(local.count(), 2u);
  EXPECT_TRUE(local.isFaulty(frame.toLocal({1, 1})));
  EXPECT_TRUE(local.isFaulty(frame.toLocal({5, 0})));
}

// Property: labels are monotone — adding faults never un-labels a node.
class LabelingMonotone : public ::testing::TestWithParam<int> {};

TEST_P(LabelingMonotone, AddingFaultsGrowsUnsafeSet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const Mesh2D mesh = Mesh2D::square(16);
  FaultSet base = injectUniform(mesh, 20, rng);
  const auto before = computeLabels(mesh, base);
  FaultSet more = base;
  // Add five more faults.
  for (int i = 0; i < 5; ++i) {
    more.add({static_cast<Coord>(rng.below(16)),
              static_cast<Coord>(rng.below(16))});
  }
  const auto after = computeLabels(mesh, more);
  for (Coord y = 0; y < 16; ++y) {
    for (Coord x = 0; x < 16; ++x) {
      if (before.isUnsafe({x, y})) {
        EXPECT_TRUE(after.isUnsafe({x, y})) << x << "," << y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelingMonotone, ::testing::Range(0, 10));

// Property: the fixpoint is stable — relabeling the labeled grid's unsafe
// set as faults reproduces a superset, and unsafe nodes never have safe
// labels violating their defining condition.
class LabelingFixpoint : public ::testing::TestWithParam<int> {};

TEST_P(LabelingFixpoint, DefinitionHoldsAtFixpoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  const Mesh2D mesh = Mesh2D::square(20);
  const FaultSet faults = injectUniform(mesh, 60, rng);
  const auto labels = computeLabels(mesh, faults);

  auto fwdBlocked = [&](Point p) {
    if (!mesh.contains(p)) return false;
    return labels.isFaulty(p) || labels.isUseless(p);
  };
  auto bwdBlocked = [&](Point p) {
    if (!mesh.contains(p)) return false;
    return labels.isFaulty(p) || labels.isCantReach(p);
  };

  for (Coord y = 0; y < 20; ++y) {
    for (Coord x = 0; x < 20; ++x) {
      const Point p{x, y};
      if (labels.isFaulty(p)) continue;
      // Useless iff +X and +Y blocked.
      EXPECT_EQ(labels.isUseless(p),
                fwdBlocked({x + 1, y}) && fwdBlocked({x, y + 1}));
      EXPECT_EQ(labels.isCantReach(p),
                bwdBlocked({x - 1, y}) && bwdBlocked({x, y - 1}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelingFixpoint, ::testing::Range(0, 10));

// The distributed protocol must agree with the centralized fixpoint.
class DistributedLabeling : public ::testing::TestWithParam<int> {};

TEST_P(DistributedLabeling, MatchesCentralizedFixpoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 773 + 11);
  const Mesh2D mesh = Mesh2D::square(24);
  const std::size_t count = 10 + static_cast<std::size_t>(GetParam()) * 15;
  const FaultSet faults = injectUniform(mesh, count, rng);
  const auto central = computeLabels(mesh, faults);
  const auto distributed = runDistributedLabeling(mesh, faults);
  for (Coord y = 0; y < mesh.height(); ++y) {
    for (Coord x = 0; x < mesh.width(); ++x) {
      EXPECT_EQ(distributed.labels.raw({x, y}), central.raw({x, y}))
          << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedLabeling, ::testing::Range(0, 12));

TEST(DistributedLabelingTest, QuiescesWithoutFaults) {
  const Mesh2D mesh = Mesh2D::square(6);
  const auto result = runDistributedLabeling(mesh, FaultSet(mesh));
  EXPECT_EQ(result.messages, 0u);
  EXPECT_EQ(countUnsafe(mesh, result.labels), 0u);
}

}  // namespace
}  // namespace meshrt
