// Tests for fault injection and the classical rectangular-block substrate.
#include <gtest/gtest.h>

#include "fault/injectors.h"
#include "fault/labeling.h"
#include "fault/rect_blocks.h"
#include "test_util.h"

namespace meshrt {
namespace {

TEST(FaultSetTest, AddIsIdempotent) {
  const Mesh2D mesh = Mesh2D::square(4);
  FaultSet faults(mesh);
  faults.add({1, 1});
  faults.add({1, 1});
  EXPECT_EQ(faults.count(), 1u);
  EXPECT_TRUE(faults.isFaulty({1, 1}));
  EXPECT_TRUE(faults.isHealthy({2, 2}));
}

TEST(InjectorTest, UniformProducesExactCount) {
  const Mesh2D mesh = Mesh2D::square(10);
  Rng rng(1);
  for (std::size_t count : {0u, 1u, 30u, 100u}) {
    Rng local = rng;
    const FaultSet faults = injectUniform(mesh, count, local);
    EXPECT_EQ(faults.count(), count);
  }
}

TEST(InjectorTest, UniformSaturatesAtMeshSize) {
  const Mesh2D mesh = Mesh2D::square(4);
  Rng rng(2);
  const FaultSet faults = injectUniform(mesh, 100, rng);
  EXPECT_EQ(faults.count(), 16u);
}

TEST(InjectorTest, UniformIsSeedDeterministic) {
  const Mesh2D mesh = Mesh2D::square(12);
  Rng a(77);
  Rng b(77);
  const FaultSet fa = injectUniform(mesh, 30, a);
  const FaultSet fb = injectUniform(mesh, 30, b);
  EXPECT_EQ(fa.toVector(), fb.toVector());
}

TEST(InjectorTest, ClusteredHitsRequestedCount) {
  const Mesh2D mesh = Mesh2D::square(20);
  Rng rng(3);
  const FaultSet faults = injectClustered(mesh, 50, 8, rng);
  EXPECT_EQ(faults.count(), 50u);
}

TEST(InjectorTest, RectanglesHitRequestedCount) {
  const Mesh2D mesh = Mesh2D::square(20);
  Rng rng(4);
  const FaultSet faults = injectRectangles(mesh, 60, 5, rng);
  EXPECT_EQ(faults.count(), 60u);
}

TEST(RectBlockTest, SingleFaultSingleBlock) {
  const Mesh2D mesh = Mesh2D::square(8);
  const RectBlockModel model(testutil::faultsAt(mesh, {{3, 3}}));
  ASSERT_EQ(model.blocks().size(), 1u);
  EXPECT_EQ(model.blocks().front().rect, (Rect{3, 3, 3, 3}));
  EXPECT_EQ(model.disabledCount(), 1u);
}

TEST(RectBlockTest, DiagonalFaultsMergeToOneBlock) {
  // 8-connected component => one bounding rectangle including the healthy
  // cells between them (the waste the MCC model avoids).
  const Mesh2D mesh = Mesh2D::square(8);
  const RectBlockModel model(testutil::faultsAt(mesh, {{2, 2}, {3, 3}}));
  ASSERT_EQ(model.blocks().size(), 1u);
  EXPECT_EQ(model.blocks().front().rect, (Rect{2, 2, 3, 3}));
  EXPECT_EQ(model.disabledCount(), 4u);
  EXPECT_TRUE(model.isDisabled({2, 3}));  // healthy but enclosed
}

TEST(RectBlockTest, TouchingBlocksMerge) {
  // Two separate 8-components whose bounding rectangles touch merge into
  // one block: an L-shape wrapping toward an adjacent single fault.
  const Mesh2D mesh = Mesh2D::square(10);
  const RectBlockModel model(testutil::faultsAt(
      mesh, {{2, 2}, {2, 3}, {2, 4}, {3, 4}, {4, 2}}));
  ASSERT_EQ(model.blocks().size(), 1u);
  EXPECT_EQ(model.blocks().front().rect, (Rect{2, 2, 4, 4}));
}

TEST(RectBlockTest, GapSeparatedBlocksStayApart) {
  // A two-node gap keeps the classical blocks (and their rings) separate.
  const Mesh2D mesh = Mesh2D::square(10);
  const RectBlockModel model(
      testutil::faultsAt(mesh, {{2, 2}, {5, 2}}));
  EXPECT_EQ(model.blocks().size(), 2u);
}

TEST(RectBlockTest, DistantBlocksStaySeparate) {
  const Mesh2D mesh = Mesh2D::square(10);
  const RectBlockModel model(
      testutil::faultsAt(mesh, {{1, 1}, {7, 7}}));
  EXPECT_EQ(model.blocks().size(), 2u);
  EXPECT_EQ(model.blockAt({1, 1}), model.blockAt({1, 1}));
  EXPECT_NE(model.blockAt({1, 1}), model.blockAt({7, 7}));
  EXPECT_EQ(model.blockAt({4, 4}), -1);
}

TEST(RectBlockTest, DisabledCountAtLeastMccUnsafe) {
  // The rectangular model never disables fewer healthy nodes than the MCC
  // model on the same faults (the paper's minimality claim, sampled).
  const Mesh2D mesh = Mesh2D::square(30);
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
    const FaultSet faults = injectUniform(mesh, 80, rng);
    const RectBlockModel rect(faults);
    const auto labels = computeLabels(mesh, faults);
    EXPECT_GE(rect.disabledCount(), countUnsafe(mesh, labels))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace meshrt
