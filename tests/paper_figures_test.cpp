// The paper's figures, re-staged as executable scenarios. Each test builds
// a fault configuration embodying one figure's phenomenon and checks the
// behavior the figure illustrates.
#include <gtest/gtest.h>

#include "fault/analysis.h"
#include "info/knowledge.h"
#include "route/bfs.h"
#include "route/ecube.h"
#include "route/rb1.h"
#include "route/rb2.h"
#include "route/rb3.h"
#include "route/validate.h"
#include "test_util.h"

namespace meshrt {
namespace {

using testutil::faultsAt;

// --------------------------------------------------------------------------
// Figure 1(a): the definition of useless and can't-reach nodes.
// --------------------------------------------------------------------------
TEST(Figure1, UselessAndCantReachDefinition) {
  const Mesh2D mesh = Mesh2D::square(10);
  // Two faults sandwiching a node from +X/+Y, two more from -X/-Y.
  const auto labels =
      computeLabels(mesh, faultsAt(mesh, {{4, 3}, {3, 4}, {6, 7}, {7, 6}}));
  EXPECT_TRUE(labels.isUseless({3, 3}));    // +X and +Y neighbors faulty
  EXPECT_TRUE(labels.isCantReach({4, 4}));  // -X and -Y neighbors faulty
  EXPECT_TRUE(labels.isUseless({6, 6}));
  EXPECT_TRUE(labels.isCantReach({7, 7}));
}

// --------------------------------------------------------------------------
// Figure 1(b): an MCC is identified between its initialization corner and
// opposite corner, and its shape is rectilinear-monotone.
// --------------------------------------------------------------------------
TEST(Figure1, MccShapeAndCorners) {
  const Mesh2D mesh = Mesh2D::square(14);
  // A staircase-ish fault cluster: the labeling completes it into a valid
  // rectilinear-monotone component.
  const FaultSet faults = faultsAt(
      mesh, {{4, 4}, {5, 4}, {5, 5}, {6, 5}, {6, 6}, {7, 6}});
  const QuadrantAnalysis qa(faults, Quadrant::NE);
  ASSERT_EQ(qa.mccs().size(), 1u);
  const Mcc& mcc = qa.mccs().front();
  // SW->NE monotone columns.
  for (Coord x = mcc.shape.xmin() + 1; x <= mcc.shape.xmax(); ++x) {
    EXPECT_GE(mcc.shape.span(x).lo, mcc.shape.span(x - 1).lo);
    EXPECT_GE(mcc.shape.span(x).hi, mcc.shape.span(x - 1).hi);
  }
  ASSERT_TRUE(mcc.cornerC.has_value());
  ASSERT_TRUE(mcc.cornerCPrime.has_value());
  EXPECT_EQ(*mcc.cornerC, (Point{3, 3}));
  EXPECT_EQ(*mcc.cornerCPrime, (Point{8, 7}));
}

// --------------------------------------------------------------------------
// Figure 2(a,b): boundary information excludes a forwarding direction that
// would lead into a forbidden region.
// --------------------------------------------------------------------------
TEST(Figure2, BoundaryInformationPreventsDeadEntry) {
  const Mesh2D mesh = Mesh2D::square(16);
  // A wide wall north of the source; destination above it. A greedy +Y
  // move under the wall is wasted; RB1's triple on the -X boundary column
  // excludes it and the route stays shortest.
  std::vector<Point> wall;
  for (Coord x = 4; x <= 12; ++x) wall.push_back({x, 8});
  const FaultSet faults = faultsAt(mesh, wall);
  const FaultAnalysis fa(faults);
  Rb1Router rb1(fa);
  // Source on the -X boundary line (x = 3 column, below corner (3,7)).
  const Point s{3, 2};
  const Point d{10, 13};
  const auto res = rb1.route(s, d);
  ASSERT_TRUE(res.delivered);
  const auto opt = healthyDistances(faults, s);
  EXPECT_EQ(res.hops(), opt[d]) << "boundary info should avoid the detour";
}

// --------------------------------------------------------------------------
// Figure 3(a,b): when no Manhattan path exists, the E-cube style detour
// still delivers (the feasibility check of [5] is unnecessary), but the
// path is not shortest in general.
// --------------------------------------------------------------------------
TEST(Figure3, DetourDeliversWhenManhattanPathMissing) {
  const Mesh2D mesh = Mesh2D::square(16);
  std::vector<Point> cells;
  for (Coord x = 2; x <= 11; ++x) cells.push_back({x, 7});  // wide wall
  const FaultSet faults = faultsAt(mesh, cells);
  const FaultAnalysis fa(faults);
  const Point s{5, 3};
  const Point d{6, 12};
  ASSERT_GT(healthyDistances(faults, s)[d], manhattan(s, d))
      << "fixture must not admit a Manhattan path";
  Rb1Router rb1(fa);
  const auto res = rb1.route(s, d);
  EXPECT_TRUE(res.delivered);
  EXPECT_TRUE(isValidPath(faults, s, d, res.path));
}

// Figure 3(c): the whole detour around one MCC can lie inside another
// MCC's forbidden region — RB1 needs extra detours, RB2 does not.
TEST(Figure3, ExtraDetourCaseStillOptimalUnderB2) {
  const Mesh2D mesh = Mesh2D::square(20);
  std::vector<Point> cells;
  for (Coord x = 0; x <= 9; ++x) cells.push_back({x, 6});    // inner wall
  for (Coord x = 0; x <= 14; ++x) cells.push_back({x, 10});  // outer wall
  const FaultSet faults = faultsAt(mesh, cells);
  const FaultAnalysis fa(faults);
  const Point s{4, 3};
  const Point d{5, 16};
  Rb2Router rb2(fa);
  const auto res = rb2.route(s, d);
  ASSERT_TRUE(res.delivered);
  EXPECT_EQ(res.hops(), healthyDistances(faults, s)[d]);
  EXPECT_GE(res.phases, 1u);
}

// --------------------------------------------------------------------------
// Figure 4(a): the "must-take" detour — s inside the forbidden region,
// d inside the critical region. Under B2 the routing detours immediately
// and optimally.
// --------------------------------------------------------------------------
TEST(Figure4, MustTakeDetourIsOptimal) {
  const Mesh2D mesh = Mesh2D::square(18);
  std::vector<Point> cells;
  for (Coord x = 3; x <= 17; ++x) cells.push_back({x, 9});  // E-glued wall
  const FaultSet faults = faultsAt(mesh, cells);
  const FaultAnalysis fa(faults);
  const Point s{9, 4};   // in R_Y: under the wall
  const Point d{9, 14};  // in R'_Y: above the wall
  ASSERT_GT(healthyDistances(faults, s)[d], manhattan(s, d));
  Rb2Router rb2(fa);
  const auto res = rb2.route(s, d);
  ASSERT_TRUE(res.delivered);
  EXPECT_EQ(res.hops(), healthyDistances(faults, s)[d]);
  // The only way around is the west end: the path must pass the wall's
  // initialization corner column.
  bool passedWest = false;
  for (Point p : res.path) {
    if (p.x <= 2) passedWest = true;
  }
  EXPECT_TRUE(passedWest);
}

// --------------------------------------------------------------------------
// Figure 4(b): both boundaries bound the forbidden region, and the +X
// boundary of one MCC joins the +X boundary of the MCC it intersects.
// --------------------------------------------------------------------------
TEST(Figure4, PlusXBoundaryJoinsDownstreamMcc) {
  const Mesh2D mesh = Mesh2D::square(16);
  // Upper MCC F(c); lower MCC F(c2) sits under F(c)'s +X boundary column.
  std::vector<Point> cells;
  for (Coord x = 4; x <= 7; ++x) cells.push_back({x, 10});  // F(c)
  for (Coord x = 7; x <= 10; ++x) cells.push_back({x, 5});  // F(c2)
  const FaultSet faults = faultsAt(mesh, cells);
  const QuadrantAnalysis qa(faults, Quadrant::NE);
  ASSERT_EQ(qa.mccs().size(), 2u);
  const QuadrantInfo info(qa, InfoModel::B3);
  // The +X boundary of F(c) descends x=8 from (8,11), intersects F(c2),
  // and joins its +X boundary at (11,6): nodes below (11,y<6) must hold
  // F(c)'s triple.
  int upper = qa.mccIndexAt({4, 10});
  bool joined = false;
  for (Coord y = 0; y < 6; ++y) {
    for (int id : info.typeIKnown({11, y})) {
      if (id == upper) joined = true;
    }
  }
  EXPECT_TRUE(joined);
}

// --------------------------------------------------------------------------
// Figure 4(c): multi-phase routing through a corner of a blocking sequence
// — the recursive distance function composes detours across several MCCs.
// --------------------------------------------------------------------------
TEST(Figure4, MultiPhaseThroughBlockingSequence) {
  const Mesh2D mesh = Mesh2D::square(24);
  std::vector<Point> cells;
  // A type-I sequence: three MCCs overlapping in columns, rising east.
  for (Coord x = 0; x <= 9; ++x) cells.push_back({x, 6});
  for (Coord x = 7; x <= 16; ++x) cells.push_back({x, 10});
  for (Coord x = 14; x <= 23; ++x) cells.push_back({x, 14});
  const FaultSet faults = faultsAt(mesh, cells);
  const FaultAnalysis fa(faults);
  const Point s{3, 2};
  const Point d{20, 20};
  ASSERT_GT(healthyDistances(faults, s)[d], manhattan(s, d));
  Rb2Router rb2(fa);
  const auto res = rb2.route(s, d);
  ASSERT_TRUE(res.delivered);
  EXPECT_EQ(res.hops(), healthyDistances(faults, s)[d]);
  // The sequence forces threading the gaps between consecutive MCCs.
  EXPECT_GE(res.phases, 2u);

  // RB3 from this (off-boundary) source still delivers a valid route.
  Rb3Router rb3(fa);
  const auto res3 = rb3.route(s, d);
  ASSERT_TRUE(res3.delivered);
  EXPECT_TRUE(isValidPath(faults, s, d, res3.path));
  EXPECT_GE(res3.hops(), res.hops());
}

// --------------------------------------------------------------------------
// Theorem 2: when the source is a boundary node of the blocking MCC, RB3
// finds the same path length as RB2.
// --------------------------------------------------------------------------
TEST(Theorem2Figure, BoundarySourceMatchesRb2) {
  const Mesh2D mesh = Mesh2D::square(18);
  std::vector<Point> cells;
  for (Coord x = 5; x <= 12; ++x) cells.push_back({x, 9});
  const FaultSet faults = faultsAt(mesh, cells);
  const FaultAnalysis fa(faults);
  Rb2Router rb2(fa);
  Rb3Router rb3(fa);
  // Sources along the -X boundary column (x=4) and the +X boundary
  // column (x=13).
  for (Point s : {Point{4, 5}, Point{4, 2}, Point{13, 4}}) {
    for (Point d : {Point{9, 15}, Point{12, 16}}) {
      const auto r2 = rb2.route(s, d);
      const auto r3 = rb3.route(s, d);
      ASSERT_TRUE(r2.delivered && r3.delivered)
          << s.str() << " -> " << d.str();
      EXPECT_EQ(r3.hops(), r2.hops()) << s.str() << " -> " << d.str();
    }
  }
}

}  // namespace
}  // namespace meshrt
